//! Continuous-batching equivalence suite: N streams multiplexed through
//! the `ServeSession` scheduler must be **logit-identical** to N
//! independent decode loops — greedy tokens equal at every position —
//! across even and ragged cache lengths, chunk boundaries that cut cache
//! blocks mid-way, and streams joining mid-flight; and a cache-resident
//! fault on one stream must land in *that* stream's report only.

mod common;

use common::{prompt, stepwise_generate};
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::attention::serve::SchedulerConfig;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    serve_expose_step, BackendKind, GenerationRequest, ModelConfig, StreamId, TransformerModel,
};

fn tiny(max_seq: usize) -> ModelConfig {
    common::tiny_config("serve-tiny", max_seq)
}

/// Mixed-length streams (even block boundary, ragged multi-block, short)
/// scheduled together must reproduce independent decode exactly — for the
/// protected EFTA sweep and the unprotected flash sweep alike. The cache
/// block is 64 rows, so the 70- and 64-token prompts exercise multi-block
/// and exact-boundary caches, while the 16-token prefill chunks cut the
/// trailing block mid-way (the re-encoded causal-frontier path).
#[test]
fn scheduled_streams_match_independent_decode() {
    let lens = [70usize, 64, 9, 33];
    let new_tokens = 4;
    for kind in [
        BackendKind::Efta(EftaOptions::optimized()),
        BackendKind::Flash,
    ] {
        let model = TransformerModel::random(21, tiny(160), kind).with_causal(true);
        let mut session = model.serve_with(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 16,
            ..Default::default()
        });
        let ids: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                session.submit_request(GenerationRequest::new(prompt(len, i), new_tokens))
            })
            .collect();
        let finished = session.run(&NoFaults);
        assert_eq!(finished.len(), lens.len());
        for (i, (id, &len)) in ids.iter().zip(&lens).enumerate() {
            let f = finished.iter().find(|f| f.id == *id).unwrap();
            let want = stepwise_generate(&model, &prompt(len, i), new_tokens);
            assert_eq!(
                f.tokens, want,
                "backend {kind}, stream {i} (prompt {len}): scheduled tokens diverged"
            );
            assert_eq!(
                f.report.total_detected, 0,
                "backend {kind}, stream {i}: clean run raised alarms: {:?}",
                f.report
            );
            assert!(f.attention.clean(), "{kind}/{i}: {:?}", f.attention);
        }
    }
}

/// Streams submitted while others are mid-decode join without disturbing
/// anyone: every stream still reproduces its independent decode, and slots
/// retire/admit across the session (max_active below the stream count
/// forces queueing).
#[test]
fn streams_joining_mid_flight_do_not_disturb_the_batch() {
    let model = TransformerModel::random(22, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true);
    let mut session = model.serve_with(SchedulerConfig {
        max_active: 2,
        prefill_chunk: 8,
        ..Default::default()
    });
    let a = session.submit_request(GenerationRequest::new(prompt(20, 0), 5));
    // A is mid-prefill after one sweep; B and C join late, C must queue.
    session.sweep_events(&NoFaults);
    let b = session.submit_request(GenerationRequest::new(prompt(33, 1), 3));
    let c = session.submit_request(GenerationRequest::new(prompt(5, 2), 6));
    let finished = session.run(&NoFaults);
    assert_eq!(finished.len(), 3);
    for (id, len, salt, new) in [(a, 20, 0, 5), (b, 33, 1, 3), (c, 5, 2, 6)] {
        let f = finished.iter().find(|f| f.id == id).unwrap();
        let want = stepwise_generate(&model, &prompt(len, salt), new);
        assert_eq!(
            f.tokens, want,
            "stream {id} diverged after mid-flight joins"
        );
    }
}

/// A `FaultSite::KvCache` SEU aimed at one stream's cache-exposure window
/// lands in that stream's per-stream report only — and is corrected, so
/// both streams' tokens still match the fault-free run.
#[test]
fn cache_fault_is_attributed_to_the_hit_stream_only() {
    let model = TransformerModel::random(23, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true);
    let cfg = SchedulerConfig {
        max_active: 4,
        prefill_chunk: 16,
        ..Default::default()
    };
    fn run<I: FaultInjector>(
        model: &TransformerModel,
        cfg: SchedulerConfig,
        inj: &I,
    ) -> (
        ft_transformer_suite::transformer::FinishedStream,
        ft_transformer_suite::transformer::FinishedStream,
    ) {
        let mut session = model.serve_with(cfg);
        let a = session.submit_request(GenerationRequest::new(prompt(24, 0), 3));
        let b = session.submit_request(GenerationRequest::new(prompt(20, 1), 3));
        let finished = session.run(inj);
        let fa = finished.iter().find(|f| f.id == a).unwrap().clone();
        let fb = finished.iter().find(|f| f.id == b).unwrap().clone();
        (fa, fb)
    }
    let (clean_a, clean_b) = run(&model, cfg, &NoFaults);

    // Stream B is the second submission (id 1). Target the exposure of its
    // layer-0 cache at sweep base position 16 (its second prefill chunk):
    // exposure coordinates are (slot, row, col, 2·step + which) with
    // step = serve_expose_step(stream, pos, layers, layer).
    let b_id = StreamId(1);
    let step = serve_expose_step(b_id, 16, 2, 0);
    let coord = OpCoord::new(1, 3, 2, 2 * step as usize);
    let inj = SeuInjector::new(FaultSite::KvCache, coord, 13);
    let (fault_a, fault_b) = run(&model, cfg, &inj);
    assert_eq!(
        inj.fired(),
        1,
        "the targeted exposure must fire exactly once"
    );

    assert!(
        fault_b.attention.cache_detected > 0 && fault_b.attention.cache_corrected > 0,
        "stream B must detect and correct its cache hit: {:?}",
        fault_b.attention
    );
    assert_eq!(
        fault_a.attention.cache_detected, 0,
        "stream A's report must stay clean: {:?}",
        fault_a.attention
    );
    assert_eq!(fault_a.tokens, clean_a.tokens, "stream A tokens unaffected");
    assert_eq!(
        fault_b.tokens, clean_b.tokens,
        "stream B's corruption must be corrected before it reaches a token"
    );
}

/// `generate` is the one-stream special case of the serving session: same
/// tokens, and a session with one stream reports the same totals.
#[test]
fn generate_is_the_one_stream_special_case() {
    let model = TransformerModel::random(24, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true);
    let p = prompt(11, 4);
    let (tokens, report) = model.generate(&p, 6, &NoFaults);
    let mut session = model.serve();
    let id = session.submit_request(GenerationRequest::new(p.clone(), 6));
    let finished = session.run(&NoFaults);
    let f = finished.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.tokens, tokens);
    assert_eq!(f.report.total_detected, report.total_detected);
    assert_eq!(tokens, stepwise_generate(&model, &p, 6));
}
