//! Statistical campaign regression (pins the Fig. 12 behaviour): a
//! fixed-seed BER sweep asserting a coverage *lower bound* for the width-8
//! tensor checksum and a false-alarm *upper bound* (plus a detection floor)
//! for the checksum schemes. Campaigns are deterministic in their seeds, so
//! these are exact regression gates, with bounds set far enough from the
//! observed values to survive intentional re-tuning of unrelated constants.

use ft_transformer_suite::abft::thresholds::Thresholds;
use ft_transformer_suite::inject::{coverage_campaign, detection_campaign, GemmShape, Scheme};

const TRIALS: u64 = 48;
const SEED: u64 = 20250726;

#[test]
fn tensor_checksum_coverage_lower_bound_across_ber_sweep() {
    let shape = GemmShape::default();
    let chk = Thresholds::calibrated().gemm;
    for ber in [2e-5f64, 1e-4, 2e-4] {
        let st = coverage_campaign(TRIALS, SEED, ber, Scheme::Tensor, shape, chk);
        assert!(
            st.injected > 100,
            "ber {ber:e}: need a statistically meaningful fault count, got {}",
            st.injected
        );
        assert!(
            st.coverage() >= 0.90,
            "ber {ber:e}: width-8 tensor checksum coverage regressed to {:.4} \
             ({} injected, {} residual)",
            st.coverage(),
            st.injected,
            st.residual_errors
        );
    }
}

#[test]
fn tensor_beats_element_and_element_still_covers_singletons() {
    // The paper's Fig. 12-left ordering at a multi-error-per-row BER.
    let shape = GemmShape::default();
    let chk = Thresholds::calibrated().gemm;
    let ber = 2e-4;
    let tensor = coverage_campaign(TRIALS, SEED ^ 1, ber, Scheme::Tensor, shape, chk);
    let element = coverage_campaign(TRIALS, SEED ^ 1, ber, Scheme::Element, shape, chk);
    assert!(
        tensor.coverage() > element.coverage(),
        "tensor {:.4} must beat element {:.4} at ber {ber:e}",
        tensor.coverage(),
        element.coverage()
    );
}

#[test]
fn element_scheme_false_alarm_upper_bound_at_calibrated_threshold() {
    // Fig. 12-right: at the calibrated relative threshold the element
    // scheme must stay quiet on clean lanes.
    let shape = GemmShape::default();
    let tau = Thresholds::calibrated().gemm.rel;
    let st = detection_campaign(TRIALS, SEED ^ 2, tau, Scheme::Element, shape);
    assert!(
        st.false_alarm_rate() <= 2e-3,
        "element-scheme false alarms regressed: {:.5} over {} clean lanes",
        st.false_alarm_rate(),
        st.clean_lanes
    );
    // And the tensor scheme too (narrower folds, less noise).
    let st = detection_campaign(TRIALS, SEED ^ 2, tau, Scheme::Tensor, shape);
    assert!(
        st.false_alarm_rate() <= 2e-3,
        "tensor-scheme false alarms regressed: {:.5}",
        st.false_alarm_rate()
    );
}

#[test]
fn detection_rate_floor_at_calibrated_threshold() {
    // Random single bit flips: most land in mantissa bits whose deltas a
    // 0.48 relative criterion on a 64-element fold cannot see (by design —
    // they are also invisible in the FP16 data domain), so the rate is well
    // below 1. The observed fixed-seed value is ≈ 0.24; exponent-range
    // flips are what the scheme exists to catch, and they dominate it.
    let shape = GemmShape::default();
    let tau = Thresholds::calibrated().gemm.rel;
    let st = detection_campaign(TRIALS * 2, SEED ^ 3, tau, Scheme::Tensor, shape);
    assert!(
        st.detection_rate() >= 0.18,
        "tensor-scheme detection floor regressed: {:.4}",
        st.detection_rate()
    );
    // A loose threshold must detect strictly less.
    let loose = detection_campaign(TRIALS * 2, SEED ^ 3, 0.99, Scheme::Tensor, shape);
    assert!(loose.detection_rate() <= st.detection_rate());
}
