//! Sharded-fleet equivalence suite: N shard workers behind the admission
//! router must be **invisible in the output** — every stream's tokens
//! bit-identical to a single-engine (and independent-decode) run on every
//! `BackendKind` — with fleet-unique stream ids under concurrent
//! submission, a mid-flight steal/migration that stays bit-identical, and
//! an SEU landing on a migrated stream's rebuilt cache that is recovered
//! *and attributed* to the owning stream on the adopting shard. The
//! per-shard ledgers must roll up losslessly.

mod common;

use common::{prompt, stepwise_generate, tiny_config};
use ft_transformer_suite::attention::backend::BackendKind;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    serve_expose_step, Engine, EngineConfig, FinishReason, Fleet, FleetConfig, FleetReport,
    GenerationRequest, ModelConfig, RecoveryPolicy, RouterPolicy, ShardId, StreamId,
    TransformerModel,
};
use std::sync::Arc;

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("fleet-tiny", max_seq)
}

/// Continuation-only greedy oracle (`stepwise_generate` echoes the
/// prompt; stream handles do not).
fn oracle(model: &TransformerModel, p: &[u32], new_tokens: usize) -> Vec<u32> {
    stepwise_generate(model, p, new_tokens)[p.len()..].to_vec()
}

fn fleet_cfg(workers: usize, router: RouterPolicy) -> FleetConfig {
    FleetConfig {
        workers,
        router,
        engine: EngineConfig::default(),
        steal: true,
        shard_threads: None,
    }
}

/// Sum-of-shards == fleet-level invariants every test re-checks: the
/// roll-up loses nothing and every retired stream appears on exactly one
/// shard.
fn assert_lossless(report: &FleetReport, want_streams: u64, want_tokens: u64) {
    let total = report.total();
    assert_eq!(report.streams_submitted, want_streams, "{report}");
    assert_eq!(total.streams_finished, want_streams, "{report}");
    assert_eq!(
        total.tokens_emitted, want_tokens,
        "per-shard token counts must sum to the delivered total: {report}"
    );
    assert_eq!(
        total.finished_streams.len() as u64,
        want_streams,
        "{report}"
    );
    let mut ids = total.finished_streams.clone();
    ids.dedup();
    assert_eq!(
        ids.len() as u64,
        want_streams,
        "every stream retires on exactly one shard: {report}"
    );
    assert_eq!(
        total.migrations_in, total.migrations_out,
        "every exported stream is adopted: {report}"
    );
}

/// A 3-shard fleet serves mixed-length streams bit-identically to the
/// single-worker engine and to independent stepwise decode — on every
/// backend — and its report roll-up is lossless.
#[test]
fn fleet_matches_single_engine_on_every_backend() {
    let lens = [18usize, 7, 25, 12, 30, 9];
    let new_tokens = 5;
    for kind in BackendKind::all() {
        let model = TransformerModel::random(61, tiny(96), kind).with_causal(true);

        let engine = Engine::spawn(model.clone(), EngineConfig::default());
        let engine_handles: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| engine.submit(GenerationRequest::new(prompt(len, i), new_tokens)))
            .collect();
        let engine_out: Vec<_> = engine_handles.into_iter().map(|h| h.wait()).collect();
        engine.shutdown();

        let fleet = Fleet::spawn(model.clone(), fleet_cfg(3, RouterPolicy::LeastLoaded));
        let fleet_handles: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| fleet.submit(GenerationRequest::new(prompt(len, i), new_tokens)))
            .collect();
        let fleet_out: Vec<_> = fleet_handles.into_iter().map(|h| h.wait()).collect();
        let report = fleet.shutdown();

        let mut tokens = 0u64;
        for (i, (e, f)) in engine_out.iter().zip(&fleet_out).enumerate() {
            let want = oracle(&model, &prompt(lens[i], i), new_tokens);
            assert_eq!(
                f.tokens, want,
                "{kind}, stream {i}: fleet diverged from independent decode"
            );
            assert_eq!(
                f.tokens, e.tokens,
                "{kind}, stream {i}: fleet diverged from the single engine"
            );
            assert_eq!(
                f.finish,
                Some(FinishReason::MaxTokens),
                "{kind}, stream {i}"
            );
            tokens += f.tokens.len() as u64;
        }
        assert_lossless(&report, lens.len() as u64, tokens);
    }
}

/// Fleet-wide `StreamId`s stay unique under concurrent submission from
/// many caller threads onto many shards (the collision regression for the
/// shared atomic allocator), and the `ShardId` / `FleetReport` Display
/// forms cover every shard plus the synthetic total row.
#[test]
fn concurrent_submissions_get_unique_ids_across_shards() {
    let threads = 4usize;
    let per_thread = 8usize;
    let model = TransformerModel::random(62, tiny(64), BackendKind::Flash).with_causal(true);
    let fleet = Fleet::spawn(model.clone(), fleet_cfg(4, RouterPolicy::LeastLoaded));

    let results: Vec<(StreamId, Vec<u32>, Vec<u32>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fleet = &fleet;
                s.spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            let salt = t * per_thread + i;
                            let p = prompt(4 + salt % 9, salt);
                            let h = fleet.submit(GenerationRequest::new(p.clone(), 3));
                            let id = h.id();
                            (id, p, h.wait().tokens)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let n = (threads * per_thread) as u64;
    let mut ids: Vec<u64> = results.iter().map(|(id, _, _)| id.0).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..n).collect::<Vec<_>>(),
        "fleet-wide ids must be exactly 0..{n} with no collisions"
    );
    let mut tokens = 0u64;
    for (id, p, got) in &results {
        let want = oracle(&model, p, 3);
        assert_eq!(got, &want, "{id}: concurrent submission diverged");
        tokens += got.len() as u64;
    }
    let report = fleet.shutdown();
    assert_lossless(&report, n, tokens);

    // Display coverage: shard rows, the synthetic total row, and ShardId.
    assert_eq!(format!("{}", ShardId(3)), "shard3");
    let text = format!("{report}");
    for s in 0..4 {
        assert!(text.contains(&format!("shard{s}:")), "{text}");
    }
    assert!(text.contains("total:"), "{text}");
    assert_eq!(report.total().shard, ShardId(4), "synthetic total row id");
    assert!(
        format!("{}", report.total()).starts_with("shard4:"),
        "total row displays with the synthetic id"
    );
}

/// Find a prompt salt whose consistent-hash shard differs from `salt0`'s,
/// by probing single-stream fleets through the public API (the ring is an
/// implementation detail). Deterministic for a fixed model/config.
fn other_shard_salt(model: &TransformerModel, len: usize, salt0: usize) -> usize {
    let shard_of = |salt: usize| -> usize {
        let fleet = Fleet::spawn(
            model.clone(),
            FleetConfig {
                steal: false,
                ..fleet_cfg(2, RouterPolicy::ConsistentHash)
            },
        );
        let h = fleet.submit(GenerationRequest::new(prompt(len, salt), 1));
        h.wait();
        let report = fleet.shutdown();
        report
            .shards
            .iter()
            .position(|s| s.streams_finished == 1)
            .expect("the probe stream retired on some shard")
    };
    let home = shard_of(salt0);
    (1..64)
        .find(|&salt| shard_of(salt0 + salt) != home)
        .map(|salt| salt0 + salt)
        .expect("some prompt hashes to the other shard")
}

/// Mid-flight steal: two long same-prompt streams pin to one
/// consistent-hash shard; the other shard drains its short stream, goes
/// hungry, and steals one *active* stream (park → board → adopt →
/// chunked re-prefill). The migrated stream's tokens stay bit-identical,
/// and the ledgers attribute the park to the donor and the adoption to
/// the thief. Migration timing is scheduling-dependent, so the run
/// retries until a mid-flight steal is observed; bit-identity is asserted
/// on every attempt.
#[test]
fn midflight_migration_is_bit_identical() {
    let model = TransformerModel::random(63, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let long_prompt = prompt(13, 0);
    let long_new = 30;
    let short_salt = other_shard_salt(&model, 9, 0);
    let short_prompt = prompt(9, short_salt);
    let want_long = oracle(&model, &long_prompt, long_new);
    let want_short = oracle(&model, &short_prompt, 3);

    let mut observed_midflight = false;
    for attempt in 0..10 {
        let fleet = Fleet::spawn(model.clone(), fleet_cfg(2, RouterPolicy::ConsistentHash));
        // Same prompt → same shard: a1/a2 pin together, the short stream
        // hashes to the other shard by construction.
        let a1 = fleet.submit(GenerationRequest::new(long_prompt.clone(), long_new));
        let a2 = fleet.submit(GenerationRequest::new(long_prompt.clone(), long_new));
        let b = fleet.submit(GenerationRequest::new(short_prompt.clone(), 3));
        assert_eq!((a1.id().0, a2.id().0, b.id().0), (0, 1, 2));
        let (a1, a2, b) = (a1.wait(), a2.wait(), b.wait());
        let report = fleet.shutdown();

        // Output equivalence holds whether or not a migration happened.
        assert_eq!(a1.tokens, want_long, "attempt {attempt}: a1 diverged");
        assert_eq!(a2.tokens, want_long, "attempt {attempt}: a2 diverged");
        assert_eq!(b.tokens, want_short, "attempt {attempt}: b diverged");
        let tokens = (a1.tokens.len() + a2.tokens.len() + b.tokens.len()) as u64;
        assert_lossless(&report, 3, tokens);

        let total = report.total();
        if total.migrations_out == 1 && a2.preemptions >= 1 {
            // Mid-flight: the victim was *active* (decoding) when parked
            // for export, so its Preempted/Resumed pair is visible on the
            // handle and the thief rebuilt its cache by re-prefill.
            let thief = report
                .shards
                .iter()
                .find(|s| s.migrations_in == 1)
                .expect("some shard adopted the migrant");
            let donor = report
                .shards
                .iter()
                .find(|s| s.migrations_out == 1)
                .expect("some shard exported the migrant");
            assert_ne!(thief.shard, donor.shard, "{report}");
            assert!(
                thief.finished_streams.contains(&StreamId(1)),
                "the stolen stream must retire on the adopting shard: {report}"
            );
            assert!(
                donor.preemptions >= 1,
                "the export park is attributed to the donor: {report}"
            );
            observed_midflight = true;
            break;
        }
    }
    assert!(
        observed_midflight,
        "no attempt produced a mid-flight steal (migration of an active stream)"
    );
}

/// Two aliased SEUs (rows 0 and 8 of one column — a shared stride-8
/// checksum lane) delivered at one exposure step: the deterministic
/// unlocatable-damage recipe from the recovery suite.
struct PairInjector(SeuInjector, SeuInjector);

impl PairInjector {
    /// Alias rows `base` and `base + 8` of one column — both must sit in
    /// the ragged tail block at the armed step, where the next append's
    /// verification detects (and fails to locate) the damage.
    fn aliased_k_rows(step: u64, col: usize, base: u64) -> Self {
        let coord = |row: u64| OpCoord {
            slot: 0,
            i: row,
            j: col as u64,
            k: 2 * step, // `which` = 0: the K payload
        };
        PairInjector(
            SeuInjector::new(FaultSite::KvCache, coord(base), 13),
            SeuInjector::new(FaultSite::KvCache, coord(base + 8), 13),
        )
    }
}

impl FaultInjector for PairInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        self.1
            .corrupt_f32(site, coord, self.0.corrupt_f32(site, coord, value))
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        self.1
            .corrupt_f16(site, coord, self.0.corrupt_f16(site, coord, value))
    }
    fn fired(&self) -> u64 {
        self.0.fired() + self.1.fired()
    }
}

/// An SEU landing on a *migrated* stream's rebuilt cache is detected,
/// re-prefilled, and corrected bit-identically on the adopting shard —
/// and the recovery is attributed to the owning stream on that shard
/// (the other shard's ledger stays clean). The fault flips two aliased
/// rows of the ragged tail block right before a decode append into that
/// block: the append's verification detects the damage, cannot locate
/// it, and the attended-window check poisons the block.
#[test]
fn seu_on_migrated_streams_rebuilt_cache_recovers_with_right_attribution() {
    let model = TransformerModel::random(64, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let long_prompt = prompt(13, 0);
    let long_new = 40;
    let short_salt = other_shard_salt(&model, 9, 0);
    let short_prompt = prompt(9, short_salt);
    let want_long = oracle(&model, &long_prompt, long_new);
    // The steal victim is the donor's newest stream: submission order
    // makes that StreamId(1). Arm the decode sweep at position 47 — token
    // 34 of 40, long after the early steal, so the exposure lands on the
    // thief's *rebuilt* cache — and flip rows 32/40, the stride-8 aliased
    // pair inside the ragged block (rows 32–46) that sweep appends into.
    // The thief's chunked re-prefill cannot swallow the armed step: the
    // steal happens with far fewer than 34 tokens emitted, so the rebuilt
    // cache ends well below row 47 and position 47 runs as an ordinary
    // per-position decode append.
    let step = serve_expose_step(StreamId(1), 47, 2, 0);

    let mut observed = false;
    for attempt in 0..10 {
        let inj = Arc::new(PairInjector::aliased_k_rows(step, 3, 32));
        let fleet = Fleet::spawn_with(
            model.clone(),
            fleet_cfg(2, RouterPolicy::ConsistentHash),
            inj.clone(),
        );
        let a1 = fleet.submit(GenerationRequest::new(long_prompt.clone(), long_new));
        let a2 = fleet.submit(
            GenerationRequest::new(long_prompt.clone(), long_new)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 }),
        );
        let b = fleet.submit(GenerationRequest::new(short_prompt.clone(), 3));
        assert_eq!((a1.id().0, a2.id().0, b.id().0), (0, 1, 2));
        let (a1, a2, b) = (a1.wait(), a2.wait(), b.wait());
        let report = fleet.shutdown();

        // Recovery equivalence holds whether or not the steal happened.
        assert_eq!(
            inj.fired(),
            2,
            "attempt {attempt}: both aliased flips must land"
        );
        assert_eq!(
            a2.tokens, want_long,
            "attempt {attempt}: recovery on the migrated stream diverged \
             from the undamaged run"
        );
        assert_eq!(a2.recoveries, 1, "attempt {attempt}: one re-prefill");
        assert_eq!(
            a2.finish,
            Some(FinishReason::Recovered),
            "attempt {attempt}"
        );
        assert_eq!(a1.tokens, want_long, "attempt {attempt}: a1 stays clean");
        assert_eq!(a1.recoveries, 0, "attempt {attempt}");
        assert_eq!(b.recoveries, 0, "attempt {attempt}");
        let tokens = (a1.tokens.len() + a2.tokens.len() + b.tokens.len()) as u64;
        assert_lossless(&report, 3, tokens);

        if report.total().migrations_out == 1 && a2.preemptions >= 1 {
            // The fault hit the rebuilt cache on the adopting shard:
            // recovery and uncorrectable-detection land in that shard's
            // ledger, attributed to the stream that retired there.
            let thief = report
                .shards
                .iter()
                .find(|s| s.migrations_in == 1)
                .expect("some shard adopted the migrant");
            let donor = report
                .shards
                .iter()
                .find(|s| s.migrations_out == 1)
                .expect("some shard exported the migrant");
            assert!(
                thief.finished_streams.contains(&StreamId(1)),
                "the migrated stream retires on the thief: {report}"
            );
            assert!(
                thief.recoveries >= 1,
                "the recovery is attributed to the adopting shard: {report}"
            );
            assert!(
                thief.cache_uncorrectable >= 1,
                "the uncorrectable detection rides the owning stream's \
                 report onto the thief's ledger: {report}"
            );
            assert_eq!(
                donor.recoveries, 0,
                "the donor's ledger stays clean: {report}"
            );
            assert_eq!(donor.cache_uncorrectable, 0, "{report}");
            observed = true;
            break;
        }
    }
    assert!(
        observed,
        "no attempt landed the SEU on a mid-flight-migrated stream"
    );
}
