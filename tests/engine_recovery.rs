//! Engine-lifecycle recovery suite: the typed `GenerationRequest` →
//! `EngineEvent` API's headline behavior, auto re-prefill
//! (`RecoveryPolicy::ReprefillBounded`), proven end to end.
//!
//! The contracts:
//! * a stream whose cache is poisoned mid-decode and recovered emits a
//!   token sequence **bit-identical** to an undamaged greedy run — for
//!   every `BackendKind` (the sticky per-block poison marks are set by
//!   append-time laundering, which needs no protected kernel), ragged
//!   caches included;
//! * poisoning that persists through `max_attempts` re-prefills aborts the
//!   stream with `FinishReason::AbortedPoisoned`;
//! * poison whose block is retired by sliding-window eviction (or that
//!   sits behind the attended window) triggers **no** recovery;
//! * `RecoveryPolicy::None` preserves the pre-lifecycle behavior: the
//!   damage stays on the report, nothing acts on it;
//! * `RecoveryPolicy::ReprefillPartial` exploits the sticky block marks to
//!   roll back to the last clean boundary and re-feed only the suffix —
//!   bit-identical to the full re-prefill with strictly fewer re-fed
//!   tokens when the poison sits near the tail, and falling back to the
//!   full replay when the poisoned block is the first attended one.

mod common;

use common::{prompt, tiny_config};
use ft_transformer_suite::attention::backend::BackendKind;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    serve_expose_step, EngineEvent, FinishReason, FinishedStream, GenerationRequest, ModelConfig,
    RecoveryPolicy, SchedulerConfig, ServeSession, StreamId, TransformerModel,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("recovery-tiny", max_seq)
}

/// Two targeted SEUs delivered through one injector: aimed at two cache
/// rows sharing a checksum lane (rows `r` and `r + stride`, same column),
/// their combined delta is unlocatable — the deterministic recipe for
/// unrepairable (poisoning) cache damage.
struct PairInjector(SeuInjector, SeuInjector);

impl PairInjector {
    /// Alias rows 0 and 8 of column `col` in slot 0 of the K payload
    /// exposed at step `step` (stride-8 checksums: same lane).
    fn aliased_k(step: u64, col: usize) -> Self {
        Self::aliased_k_rows(step, col, 0)
    }

    /// Same aliasing aimed at global rows `base` and `base + 8` — both in
    /// the block at `base / block` when the block holds ≥ 9 rows past
    /// `base`, sharing a stride-8 lane there. This is how the partial-
    /// recovery tests poison a *late* block while leaving the prefix clean.
    fn aliased_k_rows(step: u64, col: usize, base: usize) -> Self {
        let coord = |row: usize| OpCoord {
            slot: 0,
            i: row as u64,
            j: col as u64,
            k: 2 * step, // `which` = 0: the K payload
        };
        PairInjector(
            SeuInjector::new(FaultSite::KvCache, coord(base), 13),
            SeuInjector::new(FaultSite::KvCache, coord(base + 8), 13),
        )
    }
}

impl FaultInjector for PairInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        self.1
            .corrupt_f32(site, coord, self.0.corrupt_f32(site, coord, value))
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        self.1
            .corrupt_f16(site, coord, self.0.corrupt_f16(site, coord, value))
    }
    fn fired(&self) -> u64 {
        self.0.fired() + self.1.fired()
    }
}

/// A fault that *re-arms*: every exposure of slot 0 corrupts K rows 0 and
/// 8 of column `col` — the persistent-damage regime where bounded retries
/// must eventually give up.
struct PersistentPair {
    col: u64,
    fired: AtomicU64,
}

impl PersistentPair {
    fn new(col: usize) -> Self {
        PersistentPair {
            col: col as u64,
            fired: AtomicU64::new(0),
        }
    }
}

impl FaultInjector for PersistentPair {
    fn corrupt_f32(&self, _: FaultSite, _: OpCoord, value: f32) -> f32 {
        value
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        let is_k = coord.k.is_multiple_of(2);
        if site == FaultSite::KvCache
            && coord.slot == 0
            && coord.j == self.col
            && is_k
            && (coord.i == 0 || coord.i == 8)
        {
            self.fired.fetch_add(1, Ordering::Relaxed);
            value.flip_bit(13)
        } else {
            value
        }
    }
    fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

/// Drive a session to completion through the event API, returning the
/// finished streams and every emitted event.
fn run_with_events<I: FaultInjector>(
    session: &mut ServeSession<&TransformerModel>,
    inj: &I,
) -> (Vec<FinishedStream>, Vec<EngineEvent>) {
    let mut events = Vec::new();
    while !session.idle() {
        events.extend(session.sweep_events(inj));
    }
    (session.take_finished(), events)
}

fn count_recovering(events: &[EngineEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, EngineEvent::Recovering { .. }))
        .count()
}

/// Mid-decode cache poisoning recovered by `ReprefillBounded` reproduces
/// the undamaged greedy run bit for bit — on **every** backend in the
/// registry. The damage is two aliased flips in the trailing *ragged*
/// block (15 of 16 rows), laundered into a sticky per-block mark by the
/// next append's verification, which is backend-independent: even the
/// unprotected flash sweep recovers, because the trigger reads the marks,
/// not a kernel report.
#[test]
fn recovered_stream_is_bit_identical_to_undamaged_run_on_every_backend() {
    let p = prompt(13, 0);
    let new_tokens = 6;
    // Exposure step of (stream 0, sweep base position 15, layer 0 of 2):
    // at that sweep the cache holds 15 rows — a ragged trailing block with
    // rows 0 and 8 sharing a stride-8 checksum lane.
    let step = serve_expose_step(StreamId(0), 15, 2, 0);
    for kind in BackendKind::all() {
        let model = TransformerModel::random(41, tiny(64), kind)
            .with_causal(true)
            .with_cache_block(16);
        let request = || {
            GenerationRequest::new(p.clone(), new_tokens)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 })
        };

        let mut clean_session = model.serve();
        clean_session.submit_request(request());
        let (clean, clean_events) = run_with_events(&mut clean_session, &NoFaults);
        assert_eq!(count_recovering(&clean_events), 0);
        assert_eq!(clean[0].finish, FinishReason::MaxTokens);

        let inj = PairInjector::aliased_k(step, 3);
        let mut session = model.serve();
        let id = session.submit_request(request());
        let (finished, events) = run_with_events(&mut session, &inj);
        assert_eq!(inj.fired(), 2, "{kind}: both aliased flips must land");

        let f = finished.iter().find(|f| f.id == id).unwrap();
        assert_eq!(
            f.tokens, clean[0].tokens,
            "{kind}: recovered stream diverged from the undamaged run"
        );
        assert_eq!(f.recoveries, 1, "{kind}: exactly one re-prefill");
        assert_eq!(f.finish, FinishReason::Recovered, "{kind}");
        assert_eq!(session.recoveries(), 1, "{kind}");
        assert_eq!(count_recovering(&events), 1, "{kind}: {events:?}");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, EngineEvent::CachePoisoned { .. })),
            "{kind}: poisoning must surface as an event"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                EngineEvent::Finished {
                    reason: FinishReason::Recovered,
                    ..
                }
            )),
            "{kind}: {events:?}"
        );
    }
}

/// Damage that re-arms after every re-prefill exhausts the bounded budget:
/// the stream aborts with `FinishReason::AbortedPoisoned { attempts }` and
/// the session still terminates.
#[test]
fn persistent_poison_aborts_after_bounded_attempts() {
    let model = TransformerModel::random(42, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let inj = PersistentPair::new(3);
    let mut session = model.serve();
    let id = session.submit_request(
        GenerationRequest::new(prompt(13, 1), 6)
            .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 2 }),
    );
    let (finished, events) = run_with_events(&mut session, &inj);
    assert!(inj.fired() > 0);
    let f = finished.iter().find(|f| f.id == id).unwrap();
    assert_eq!(
        f.finish,
        FinishReason::AbortedPoisoned { attempts: 2 },
        "events: {events:?}"
    );
    assert_eq!(f.recoveries, 2);
    assert_eq!(count_recovering(&events), 2);
    assert!(events.iter().any(|e| matches!(
        e,
        EngineEvent::Finished {
            reason: FinishReason::AbortedPoisoned { .. },
            ..
        }
    )));
    // An aborted stream is still *finished*: its (suspect) history is
    // returned rather than dropped — short of the full budget, since the
    // suspect tokens of the three poisoned sweeps were discarded.
    assert!(
        f.tokens.len() >= 13 && f.tokens.len() < 13 + 6,
        "got {} tokens",
        f.tokens.len()
    );
}

/// Poison whose block falls behind the stream's attended window before the
/// engine's check — and is then retired outright by sliding-window
/// eviction — must NOT trigger a re-prefill: the per-block sticky marks
/// travel out with their block, and the recovery trigger is scoped to the
/// attended window. The stream still finishes with tokens bit-identical to
/// the undamaged windowed run, because no sampled position ever attends
/// the damaged rows.
#[test]
fn poison_retired_by_eviction_is_not_reprefilled() {
    let model = TransformerModel::random(43, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let cfg = SchedulerConfig {
        max_active: 2,
        prefill_chunk: 12,
        ..Default::default()
    };
    let p = prompt(36, 2);
    let request = || {
        GenerationRequest::new(p.clone(), 3)
            .with_window(4)
            .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 })
    };

    let mut clean_session = model.serve_with(cfg);
    clean_session.submit_request(request());
    let (clean, _) = run_with_events(&mut clean_session, &NoFaults);

    // Corrupt K rows 0 and 8 (same stride-8 lane) at the sweep based at
    // position 12: the append launders the damage into block 0's sticky
    // mark, but by the end of that 12-token chunk the 4-row window's
    // attended set starts at block 1 — the mark is behind the window at
    // check time, and the next sweep's pre-append eviction retires it.
    let step = serve_expose_step(StreamId(0), 12, 2, 0);
    let inj = PairInjector::aliased_k(step, 3);
    let mut session = model.serve_with(cfg);
    let id = session.submit_request(request());
    let (finished, events) = run_with_events(&mut session, &inj);
    assert_eq!(inj.fired(), 2, "both aliased flips must land");

    let f = finished.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.recoveries, 0, "eviction-retired poison must not recover");
    assert_eq!(f.finish, FinishReason::MaxTokens);
    assert_eq!(count_recovering(&events), 0, "{events:?}");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, EngineEvent::CachePoisoned { .. })),
        "behind-window damage must not surface as poisoning: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EngineEvent::EvictedBlocks { .. })),
        "the damaged block must actually be evicted: {events:?}"
    );
    // The damage was *seen* (append verification detected it, could not
    // locate it) — it just never reached an attended position.
    assert!(
        f.attention.cache_detected >= 1,
        "append laundering must be on record: {:?}",
        f.attention
    );
    assert_eq!(
        f.attention.cache_uncorrectable, 0,
        "window-scoped reports never counted it as live poison: {:?}",
        f.attention
    );
    assert_eq!(
        f.tokens, clean[0].tokens,
        "no sampled position attends the damaged rows"
    );
}

/// `RecoveryPolicy::None` (the default) preserves the pre-lifecycle
/// behavior exactly: the poisoning is reported — sticky, every sweep — but
/// nothing acts on it, and the stream runs to its token budget.
#[test]
fn recovery_policy_none_reports_but_never_reprefills() {
    let model = TransformerModel::random(44, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let step = serve_expose_step(StreamId(0), 15, 2, 0);
    let inj = PairInjector::aliased_k(step, 3);
    let mut session = model.serve();
    let id = session.submit_request(GenerationRequest::new(prompt(13, 3), 6));
    let (finished, events) = run_with_events(&mut session, &inj);
    assert_eq!(inj.fired(), 2);
    let f = finished.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.recoveries, 0);
    assert_eq!(f.finish, FinishReason::MaxTokens);
    assert_eq!(count_recovering(&events), 0);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EngineEvent::CachePoisoned { .. })),
        "the poisoning is still surfaced as an event: {events:?}"
    );
    assert!(
        f.attention.cache_uncorrectable >= 1,
        "the sticky signal must ride the stream report: {:?}",
        f.attention
    );
    assert!(
        f.report.cache_uncorrectable >= 1,
        "…and the model-level report: {:?}",
        f.report
    );
    assert_eq!(f.tokens.len(), 13 + 6);
}

/// Recovery composes with the rest of the engine: a poisoned stream
/// recovers while an untouched neighbor decodes on, unaware — its tokens,
/// report, and finish reason are exactly those of a solo run.
#[test]
fn neighbor_streams_are_undisturbed_by_a_recovery() {
    let model = TransformerModel::random(45, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    // Solo oracle for the neighbor (stream id differs between sessions,
    // so compute it from its own single-stream session).
    let neighbor_prompt = prompt(9, 4);
    let mut solo = model.serve();
    solo.submit_request(GenerationRequest::new(neighbor_prompt.clone(), 5));
    let (solo_finished, _) = run_with_events(&mut solo, &NoFaults);

    // Joint session: stream 0 gets poisoned at decode base 15, stream 1
    // is the neighbor. Stream 1's exposure steps live in a disjoint
    // (stream-shifted) namespace, so the pair injector cannot touch it.
    let step = serve_expose_step(StreamId(0), 15, 2, 0);
    let inj = PairInjector::aliased_k(step, 3);
    let mut session = model.serve();
    let victim = session.submit_request(
        GenerationRequest::new(prompt(13, 0), 6)
            .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 }),
    );
    let neighbor = session.submit_request(GenerationRequest::new(neighbor_prompt, 5));
    let (finished, events) = run_with_events(&mut session, &inj);
    assert_eq!(inj.fired(), 2);
    let fv = finished.iter().find(|f| f.id == victim).unwrap();
    assert_eq!(fv.finish, FinishReason::Recovered);
    let fn_ = finished.iter().find(|f| f.id == neighbor).unwrap();
    assert_eq!(fn_.tokens, solo_finished[0].tokens);
    assert_eq!(fn_.finish, FinishReason::MaxTokens);
    assert!(fn_.attention.clean(), "{:?}", fn_.attention);
    // Every Recovering/CachePoisoned event names the victim.
    for e in &events {
        if matches!(
            e,
            EngineEvent::Recovering { .. } | EngineEvent::CachePoisoned { .. }
        ) {
            assert_eq!(e.stream(), victim, "{e:?}");
        }
    }
}

/// `ReprefillPartial` with poison near the tail: the sticky block marks
/// localize the damage, so recovery truncates to the last clean block
/// boundary and re-feeds only the suffix. The recovered stream is
/// bit-identical to both the undamaged run and the full re-prefill twin —
/// and its `recovery_fed` (history tokens scheduled for re-feeding) is
/// strictly lower, the measurable O(window)-vs-O(history) saving.
#[test]
fn partial_reprefill_matches_full_and_clean_and_feeds_strictly_less() {
    let model = TransformerModel::random(46, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let cfg = SchedulerConfig {
        max_active: 2,
        prefill_chunk: 16,
        ..Default::default()
    };
    let p = prompt(44, 5);
    let new_tokens = 6;
    let request = |recovery| GenerationRequest::new(p.clone(), new_tokens).with_recovery(recovery);
    // First decode sweep (base position 44): 44 rows resident, block 2
    // ragged with rows 32..44 — global rows 32 and 40 share a stride-8
    // lane there, and the prefill exposures (bases 0/16/32) never see
    // them, so the prefix blocks 0 and 1 stay clean.
    let step = serve_expose_step(StreamId(0), 44, 2, 0);

    let mut clean_session = model.serve_with(cfg);
    clean_session.submit_request(request(RecoveryPolicy::ReprefillPartial {
        max_attempts: 3,
    }));
    let (clean, clean_events) = run_with_events(&mut clean_session, &NoFaults);
    assert_eq!(count_recovering(&clean_events), 0);

    let run = |recovery| {
        let inj = PairInjector::aliased_k_rows(step, 3, 32);
        let mut session = model.serve_with(cfg);
        let id = session.submit_request(request(recovery));
        let (finished, events) = run_with_events(&mut session, &inj);
        assert_eq!(inj.fired(), 2, "both aliased flips must land");
        assert_eq!(count_recovering(&events), 1, "{events:?}");
        finished.into_iter().find(|f| f.id == id).unwrap()
    };
    let partial = run(RecoveryPolicy::ReprefillPartial { max_attempts: 3 });
    let full = run(RecoveryPolicy::ReprefillBounded { max_attempts: 3 });

    for (label, f) in [("partial", &partial), ("full", &full)] {
        assert_eq!(f.tokens, clean[0].tokens, "{label} diverged from clean");
        assert_eq!(f.finish, FinishReason::Recovered, "{label}");
        assert_eq!(f.recoveries, 1, "{label}");
    }
    // History at recovery time: 44 prompt rows + 1 committed token. The
    // full twin replays all 45; the partial rollback keeps blocks 0 and 1
    // (32 rows) materialized and re-feeds only the 13-row suffix.
    assert_eq!(full.recovery_fed, 45);
    assert_eq!(partial.recovery_fed, 45 - 32);
    assert!(
        partial.recovery_fed < full.recovery_fed,
        "partial re-prefill must schedule strictly fewer re-fed tokens"
    );
}

/// `ReprefillPartial` with poison in the *first attended* block: there is
/// no clean prefix to keep, so the policy must fall back to the full
/// re-prefill — same re-fed token count as the bounded twin, still
/// bit-identical to the undamaged run.
#[test]
fn partial_reprefill_falls_back_to_full_when_first_attended_block_is_poisoned() {
    let model = TransformerModel::random(41, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let p = prompt(13, 0);
    let new_tokens = 6;
    let request = |recovery| GenerationRequest::new(p.clone(), new_tokens).with_recovery(recovery);
    // Damage rows 0 and 8 of block 0 — the first attended block of an
    // unwindowed stream — at decode base 15 (15-row ragged block).
    let step = serve_expose_step(StreamId(0), 15, 2, 0);

    let mut clean_session = model.serve();
    clean_session.submit_request(request(RecoveryPolicy::ReprefillPartial {
        max_attempts: 3,
    }));
    let (clean, _) = run_with_events(&mut clean_session, &NoFaults);

    let run = |recovery| {
        let inj = PairInjector::aliased_k(step, 3);
        let mut session = model.serve();
        let id = session.submit_request(request(recovery));
        let (finished, events) = run_with_events(&mut session, &inj);
        assert_eq!(inj.fired(), 2);
        assert_eq!(count_recovering(&events), 1, "{events:?}");
        finished.into_iter().find(|f| f.id == id).unwrap()
    };
    let partial = run(RecoveryPolicy::ReprefillPartial { max_attempts: 3 });
    let full = run(RecoveryPolicy::ReprefillBounded { max_attempts: 3 });

    assert_eq!(partial.tokens, clean[0].tokens);
    assert_eq!(partial.finish, FinishReason::Recovered);
    assert_eq!(partial.recoveries, 1);
    assert_eq!(
        partial.recovery_fed, full.recovery_fed,
        "no clean prefix to exploit: the fallback must replay the whole history"
    );
    assert!(
        partial.recovery_fed > p.len(),
        "full history = prompt + committed tokens"
    );
}
