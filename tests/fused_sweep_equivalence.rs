//! Fused multi-row sweep equivalence suite.
//!
//! The contract of the tiled `(stream, slot)` sweep kernel: its output rows
//! are **bit-identical** to the per-row oracle (the original
//! `(stream, row, slot)` fan-out where every chunk row re-reads and, under
//! EFTA, re-verifies its attended cache blocks itself) — for every backend
//! in the registry, across ragged trailing blocks, mixed per-stream
//! sliding windows, front-evicted caches, and mid-flight chunked prefill.
//! Shared verification changes *accounting*, not arithmetic: a cache SEU
//! in a block attended by the whole chunk is located, corrected, and
//! attributed to the right stream's report exactly **once** per sweep by
//! the fused path, where the per-row oracle re-detects it once per
//! attending row.

use ft_transformer_suite::attention::backend::{AttentionBackend, BackendKind};
use ft_transformer_suite::attention::kv::KvCache;
use ft_transformer_suite::attention::serve::{StreamId, StreamSlice};
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};

const HEADS: usize = 2;
const DIM: usize = 16;
const SCALE: f32 = 0.25; // 1/sqrt(16)

/// Single-token K/V rows, deterministic per (seed, position).
fn kv_row(seed: u64, t: usize) -> (Tensor4F16, Tensor4F16) {
    (
        normal_tensor_f16(seed + t as u64, 1, HEADS, 1, DIM, 0.6),
        normal_tensor_f16(seed + 500 + t as u64, 1, HEADS, 1, DIM, 0.8),
    )
}

/// Cache holding token rows `0..len`, appended one at a time exactly like
/// incremental decode does (chunked prefill shares block contents with
/// this, so the sweep geometry is all that varies).
fn cache_over(seed: u64, len: usize, block: usize) -> KvCache {
    let mut cache = KvCache::new(1, HEADS, DIM, block, 8, SCALE);
    for t in 0..len {
        let (k, v) = kv_row(seed, t);
        assert!(cache.append(&k, &v).clean());
    }
    cache
}

/// Query chunk of `c` rows (the tail rows of the stream's sequence).
fn q_chunk(seed: u64, c: usize) -> Tensor4F16 {
    normal_tensor_f16(seed + 900, 1, HEADS, c, DIM, 0.6)
}

/// Fused tile sweep ≡ per-row oracle, bit-for-bit, on every backend — over
/// a batch mixing decode (c = 1) with mid-flight chunked prefill (c > 1),
/// ragged trailing blocks, a sliding window, and a front-evicted cache.
#[test]
fn fused_sweep_bit_matches_per_row_oracle_on_every_backend() {
    // (len, block, chunk, window, evict_front): one stream per row.
    let shapes: &[(usize, usize, usize, Option<usize>, usize)] = &[
        (21, 8, 1, None, 0),     // plain decode, ragged tail
        (13, 4, 4, None, 0),     // chunked prefill, ragged tail
        (27, 8, 5, Some(10), 0), // chunk under a sliding window
        (24, 8, 3, None, 1),     // exact block boundary, front-evicted
        (9, 4, 2, Some(6), 0),   // short stream, tight window
    ];
    let mut caches = Vec::new();
    let mut chunks = Vec::new();
    for (i, &(len, block, c, _, evict)) in shapes.iter().enumerate() {
        let seed = 7000 + i as u64 * 37;
        let mut cache = cache_over(seed, len, block);
        if evict > 0 {
            assert_eq!(cache.evict_front(evict), evict);
        }
        caches.push(cache);
        chunks.push(q_chunk(seed, c));
    }
    let slices: Vec<StreamSlice<'_>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, _, _, window, _))| StreamSlice {
            stream: StreamId(i as u64 * 3),
            cache: &caches[i],
            q: &chunks[i],
            window,
        })
        .collect();

    for kind in BackendKind::all() {
        let fused = kind
            .try_decode_sweep(&slices, &NoFaults, None)
            .unwrap_or_else(|e| panic!("{kind}: fused sweep failed: {e}"));
        let per_row = kind
            .try_decode_sweep_per_row(&slices, &NoFaults, None)
            .unwrap_or_else(|e| panic!("{kind}: per-row sweep failed: {e}"));
        assert_eq!(fused.len(), slices.len());
        assert_eq!(per_row.len(), slices.len());
        for (i, (f, p)) in fused.iter().zip(&per_row).enumerate() {
            assert_eq!(f.stream, slices[i].stream);
            assert_eq!(p.stream, slices[i].stream);
            assert_eq!(
                f.o.max_abs_diff(&p.o),
                0.0,
                "{kind} stream {i} {:?}: fused tile sweep drifted from the \
                 per-row oracle",
                shapes[i]
            );
            assert!(f.report.clean(), "{kind} stream {i}: {:?}", f.report);
            // Both paths report the same analytic census (the shared
            // per-row attended-prefix model), so stats stay comparable
            // across fused and oracle runs.
            assert_eq!(
                f.timeline.total(),
                p.timeline.total(),
                "{kind} stream {i}: fused/per-row stats census diverged"
            );
        }
    }
}

/// Regression test for the sweep-stats overcount: a c-row chunk's census
/// must charge each row its *own* attended prefix and the checksum /
/// payload read traffic once per attended-block union — strictly less
/// than c× the full-cache single-row roofline the old census multiplied
/// out (`per_row(len) * c`).
#[test]
fn chunk_sweep_census_is_less_than_c_times_the_single_row_roofline() {
    let (len, block, c) = (24usize, 8usize, 6usize);
    let seed = 8100;
    let cache = cache_over(seed, len, block);
    let chunk = q_chunk(seed, c);
    let single = q_chunk(seed + 1, 1);
    for kind in BackendKind::all() {
        let chunk_out = kind
            .try_decode_sweep(
                &[StreamSlice {
                    stream: StreamId(0),
                    cache: &cache,
                    q: &chunk,
                    window: None,
                }],
                &NoFaults,
                None,
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let single_out = kind
            .try_decode_sweep(
                &[StreamSlice {
                    stream: StreamId(0),
                    cache: &cache,
                    q: &single,
                    window: None,
                }],
                &NoFaults,
                None,
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let chunk_stats = chunk_out[0].timeline.total();
        let single_stats = single_out[0].timeline.total();
        assert!(
            chunk_stats.hbm_read < c as u64 * single_stats.hbm_read,
            "{kind}: chunk census {} must undercut the c×roofline {}",
            chunk_stats.hbm_read,
            c as u64 * single_stats.hbm_read
        );
        assert!(
            chunk_stats.tc_flops < c as u64 * single_stats.tc_flops,
            "{kind}: chunk compute census must reflect per-row prefixes"
        );
    }
}

/// Shared-block verification fires once per sweep: a KV-cache SEU in a
/// block attended by every row of the chunk is detected and corrected
/// exactly once by the fused sweep (the tile verifies each block once),
/// once *per attending row* by the per-row oracle — and is attributed to
/// the faulted stream only. Outputs stay bit-identical between the two
/// paths because both read the same corrected values.
#[test]
fn cache_seu_is_corrected_once_per_fused_sweep_and_attributed_to_its_stream() {
    let (len, block, c) = (13usize, 4usize, 4usize);
    let seed_a = 9200;
    let seed_b = 9300;
    let cache_a = cache_over(seed_a, len, block);
    let mut cache_b = cache_over(seed_b, len, block);
    // Flip one K-payload bit in stream B's block 0 (attended by all four
    // chunk rows), head-slot 1.
    let seu = SeuInjector::new(FaultSite::KvCache, OpCoord::new(1, 1, 3, 0), 14);
    cache_b.expose(&seu, 0);
    assert_eq!(seu.fired(), 1, "the cache SEU must land");

    let qa = q_chunk(seed_a, c);
    let qb = q_chunk(seed_b, c);
    let slices = [
        StreamSlice {
            stream: StreamId(0),
            cache: &cache_a,
            q: &qa,
            window: None,
        },
        StreamSlice {
            stream: StreamId(5),
            cache: &cache_b,
            q: &qb,
            window: None,
        },
    ];

    for name in ["efta", "efta-o"] {
        let kind: BackendKind = name.parse().unwrap();
        let fused = kind.try_decode_sweep(&slices, &NoFaults, None).unwrap();
        let per_row = kind
            .try_decode_sweep_per_row(&slices, &NoFaults, None)
            .unwrap();

        // Attribution: stream A is untouched on both paths.
        assert!(fused[0].report.clean(), "{name}: {:?}", fused[0].report);
        assert!(per_row[0].report.clean(), "{name}: {:?}", per_row[0].report);

        // The fused tile verifies B's damaged block exactly once per sweep.
        assert_eq!(fused[1].stream, StreamId(5));
        assert_eq!(
            (
                fused[1].report.cache_detected,
                fused[1].report.cache_corrected
            ),
            (1, 1),
            "{name}: shared verification must count the block fault once, \
             got {:?}",
            fused[1].report
        );
        assert_eq!(fused[1].report.cache_uncorrectable, 0);

        // The per-row oracle re-verifies it once per attending row.
        assert_eq!(
            (
                per_row[1].report.cache_detected,
                per_row[1].report.cache_corrected
            ),
            (c as u64, c as u64),
            "{name}: per-row oracle re-detects per attending row, got {:?}",
            per_row[1].report
        );

        // Accounting differs; arithmetic must not.
        for i in 0..slices.len() {
            assert_eq!(
                fused[i].o.max_abs_diff(&per_row[i].o),
                0.0,
                "{name} stream {i}: corrected reads must stay bit-identical \
                 between fused and per-row sweeps"
            );
        }
    }
}
