//! Eviction / sliding-window equivalence suite.
//!
//! The contract of block-granular KV-cache eviction: decoding over an
//! evicted (or windowed) cache is **bit-identical** to decoding against a
//! freshly built cache that holds only the attended window — for every
//! backend in the registry, including ragged block boundaries. At the
//! serving layer, a windowed `ServeSession` (chunked prefill, batched
//! sweeps, mid-flight eviction) reproduces token-at-a-time windowed
//! decode exactly, bounds its cache bytes, and surfaces eviction events
//! per stream; and a `FaultSite::KvCache` SEU landing in a *surviving*
//! block after eviction is still located, corrected, and attributed to
//! the right stream.

mod common;

use common::{prompt, stepwise_generate, tiny_config};
use ft_transformer_suite::attention::backend::{AttentionBackend, BackendKind};
use ft_transformer_suite::attention::decode::DecodeRequest;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::attention::kv::KvCache;
use ft_transformer_suite::attention::serve::{StreamId, StreamSlice};
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    GenerationRequest, ModelConfig, SchedulerConfig, TransformerModel,
};

const HEADS: usize = 2;
const DIM: usize = 16;
const SCALE: f32 = 0.25; // 1/sqrt(16)

/// Single-token K/V rows, deterministic per (seed, position).
fn kv_row(seed: u64, t: usize) -> (Tensor4F16, Tensor4F16) {
    (
        normal_tensor_f16(seed + t as u64, 1, HEADS, 1, DIM, 0.6),
        normal_tensor_f16(seed + 500 + t as u64, 1, HEADS, 1, DIM, 0.8),
    )
}

/// Cache holding token rows `from..to` of the (seed-derived) sequence,
/// appended one at a time exactly like decode does.
fn cache_over(seed: u64, from: usize, to: usize, block: usize) -> KvCache {
    let mut cache = KvCache::new(1, HEADS, DIM, block, 8, SCALE);
    for t in from..to {
        let (k, v) = kv_row(seed, t);
        assert!(cache.append(&k, &v).clean());
    }
    cache
}

/// Every backend must decode a front-evicted cache bit-identically to a
/// fresh cache built from only the resident rows — including ragged
/// trailing blocks. The two caches share block boundaries (eviction drops
/// whole blocks), so even the checksummed EFTA path reproduces the exact
/// same arithmetic.
#[test]
fn evicted_decode_bit_matches_fresh_window_cache_on_every_backend() {
    for (tokens, block, evict) in [
        (21usize, 8usize, 1usize), // ragged tail, evict one block
        (21, 8, 2),                // resident = ragged tail only
        (24, 8, 2),                // exact block boundary
        (13, 4, 2),                // small blocks, ragged tail
    ] {
        let seed = 1000 + (tokens * 10 + evict) as u64;
        let mut evicted = cache_over(seed, 0, tokens, block);
        assert_eq!(evicted.evict_front(evict), evict);
        let fresh = cache_over(seed, evict * block, tokens, block);
        assert_eq!(evicted.resident_len(), fresh.len());

        let q = normal_tensor_f16(seed + 900, 1, HEADS, 1, DIM, 0.6);
        for kind in BackendKind::all() {
            let got = kind
                .try_decode(&DecodeRequest::new(&evicted, &q).at_step(tokens - 1))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let want = kind
                .try_decode(&DecodeRequest::new(&fresh, &q).at_step(tokens - 1))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(
                got.o.max_abs_diff(&want.o),
                0.0,
                "{kind} tokens={tokens} block={block} evict={evict}: \
                 evicted-cache decode drifted from the fresh window cache"
            );
            assert!(got.report.clean(), "{kind}: {:?}", got.report);
        }
    }
}

/// The sliding-window knob without any eviction: attention restricted to
/// the last `window` rows (block-granular) equals decoding a fresh cache
/// holding exactly the attended blocks — and an evicted cache under the
/// same window agrees too (storage policy is invisible to the numerics).
#[test]
fn windowed_decode_bit_matches_fresh_cache_of_the_attended_blocks() {
    let (tokens, block, window) = (27usize, 8usize, 10usize);
    let seed = 4242;
    let full = cache_over(seed, 0, tokens, block);
    // vis = 27, window 10 → first attended block = (27-10)/8 = 2.
    let fresh = cache_over(seed, 2 * block, tokens, block);
    let mut evicted = cache_over(seed, 0, tokens, block);
    assert_eq!(evicted.evict_front(1), 1, "evict behind the window");

    let q = normal_tensor_f16(seed + 900, 1, HEADS, 1, DIM, 0.6);
    for kind in BackendKind::all() {
        let windowed = kind
            .try_decode(
                &DecodeRequest::new(&full, &q)
                    .at_step(tokens - 1)
                    .with_window(Some(window)),
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let want = kind
            .try_decode(&DecodeRequest::new(&fresh, &q).at_step(tokens - 1))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(
            windowed.o.max_abs_diff(&want.o),
            0.0,
            "{kind}: windowed decode over the full cache drifted"
        );
        let evicted_windowed = kind
            .try_decode(
                &DecodeRequest::new(&evicted, &q)
                    .at_step(tokens - 1)
                    .with_window(Some(window)),
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(
            evicted_windowed.o.max_abs_diff(&want.o),
            0.0,
            "{kind}: eviction behind the window must not change the output"
        );
    }
}

/// A `FaultSite::KvCache` SEU landing in a *surviving* block after
/// eviction is located and corrected by the EFTA sweep, and lands in the
/// right stream's report only — global fault coordinates stay stable
/// across eviction.
#[test]
fn seu_in_surviving_block_after_eviction_is_corrected_and_attributed() {
    use ft_transformer_suite::attention::serve::sweep_efta;
    let cache_a = cache_over(100, 0, 20, 8);
    let mut cache_b = cache_over(200, 0, 20, 8);
    assert_eq!(cache_b.evict_front(1), 1);
    let clean_b = cache_b.clone();

    // Global row 12 lives in block 1 — resident after the eviction.
    let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(1, 12, 3, 0), 14);
    cache_b.expose(&inj, 0);
    assert_eq!(inj.fired(), 1, "the surviving-block coordinate must fire");

    let qa = normal_tensor_f16(901, 1, HEADS, 1, DIM, 0.6);
    let qb = normal_tensor_f16(902, 1, HEADS, 1, DIM, 0.6);
    let slices = [
        StreamSlice {
            stream: StreamId(0),
            cache: &cache_a,
            q: &qa,
            window: None,
        },
        StreamSlice {
            stream: StreamId(5),
            cache: &cache_b,
            q: &qb,
            window: None,
        },
    ];
    let outs = sweep_efta(&slices, &NoFaults, None, &EftaOptions::optimized()).unwrap();
    assert!(outs[0].report.clean(), "{:?}", outs[0].report);
    assert_eq!(outs[1].stream, StreamId(5));
    assert!(outs[1].report.cache_detected > 0, "{:?}", outs[1].report);
    assert!(outs[1].report.cache_corrected > 0);
    assert_eq!(outs[1].report.cache_uncorrectable, 0);

    // Corrected means corrected: the faulted stream's output matches the
    // clean evicted cache's output up to checksum-fold rounding — the
    // located element is restored as `stored − Δ1` (f32 sum noise), and
    // the ~1e-7 residue can flip one FP16 ulp in a softmax weight.
    let clean_slice = [StreamSlice {
        stream: StreamId(5),
        cache: &clean_b,
        q: &qb,
        window: None,
    }];
    let clean_out = sweep_efta(&clean_slice, &NoFaults, None, &EftaOptions::optimized()).unwrap();
    let diff = outs[1].o.max_abs_diff(&clean_out[0].o);
    assert!(diff < 5e-3, "corrected output drifted: {diff}");
}

// ---------------------------------------------------------------------------
// Model-level: windowed serving ≡ windowed token-at-a-time decode.
// ---------------------------------------------------------------------------

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("evict-tiny", max_seq)
}

/// Mid-flight eviction during scheduled serving: streams long enough to
/// evict several blocks while decoding must reproduce the token-at-a-time
/// windowed oracle exactly, for the protected EFTA sweep and the
/// unprotected flash sweep alike — chunk boundaries cutting cache blocks
/// included. Eviction events land in the per-stream reports.
/// The window is a per-*request* property now: one session serves a
/// full-attention stream and two windowed streams side by side, and each
/// reproduces the stepwise oracle of a model configured with *its* window
/// — the old model-level `with_window` knob is just the default a request
/// without a window inherits.
#[test]
fn mixed_per_request_windows_each_match_their_own_oracle() {
    use ft_transformer_suite::transformer::GenerationRequest;
    let base = TransformerModel::random(33, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(4);
    let windowed = base.clone().with_window(9);
    let new_tokens = 6;
    let lens = [26usize, 16, 31];
    let windows = [None, Some(9), Some(9)];
    let mut session = base.serve_with(SchedulerConfig {
        max_active: 3,
        prefill_chunk: 5,
        ..Default::default()
    });
    let ids: Vec<_> = lens
        .iter()
        .zip(&windows)
        .enumerate()
        .map(|(i, (&len, &w))| {
            let mut req = GenerationRequest::new(prompt(len, i), new_tokens);
            if let Some(w) = w {
                req = req.with_window(w);
            }
            session.submit_request(req)
        })
        .collect();
    let finished = session.run(&NoFaults);
    for (i, ((id, &len), &w)) in ids.iter().zip(&lens).zip(&windows).enumerate() {
        let f = finished.iter().find(|f| f.id == *id).unwrap();
        let oracle_model = if w.is_some() { &windowed } else { &base };
        let want = stepwise_generate(oracle_model, &prompt(len, i), new_tokens);
        assert_eq!(
            f.tokens, want,
            "stream {i} (window {w:?}): diverged from its own oracle"
        );
        if w.is_some() {
            assert!(
                f.attention.cache_evicted_blocks > 0,
                "stream {i}: a windowed stream this long must evict"
            );
        } else {
            assert_eq!(
                f.attention.cache_evicted_blocks, 0,
                "stream {i}: full attention must never evict"
            );
        }
    }
}

#[test]
fn windowed_scheduled_streams_match_windowed_stepwise_decode() {
    let lens = [26usize, 16, 7, 32];
    let new_tokens = 6;
    for kind in [
        BackendKind::Efta(EftaOptions::optimized()),
        BackendKind::Flash,
    ] {
        let model = TransformerModel::random(31, tiny(96), kind)
            .with_causal(true)
            .with_cache_block(4)
            .with_window(9);
        let mut session = model.serve_with(SchedulerConfig {
            max_active: 3,
            prefill_chunk: 5,
            ..Default::default()
        });
        let ids: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                session.submit_request(GenerationRequest::new(prompt(len, i), new_tokens))
            })
            .collect();
        let finished = session.run(&NoFaults);
        assert_eq!(finished.len(), lens.len());
        let mut any_evicted = 0;
        for (i, (id, &len)) in ids.iter().zip(&lens).enumerate() {
            let f = finished.iter().find(|f| f.id == *id).unwrap();
            let want = stepwise_generate(&model, &prompt(len, i), new_tokens);
            assert_eq!(
                f.tokens, want,
                "backend {kind}, stream {i} (prompt {len}): windowed \
                 scheduled decode diverged from the stepwise oracle"
            );
            assert_eq!(f.report.total_detected, 0, "{kind}/{i}: {:?}", f.report);
            any_evicted += f.attention.cache_evicted_blocks;
        }
        assert!(
            any_evicted > 0,
            "{kind}: the workload must actually exercise mid-flight eviction"
        );
    }
}
