//! Unified-API integration suite: the cross-backend equivalence matrix,
//! registry round-trips, block-size policy, and batched execution.
//!
//! This is the contract the `AttentionBackend` redesign exists to enforce:
//! every backend in the registry computes the *same attention* as the
//! reference oracle, over shapes that exercise ragged tiling
//! (`seq % block != 0`), through nothing but `BackendKind::from_str` and
//! `AttentionBackend::run`.

use ft_transformer_suite::attention::backend::{
    AttentionBackend, AttentionRequest, BackendError, BackendKind,
};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, OpCoord, SeuInjector};

fn workload(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    (q, k, v)
}

/// FP16-data tolerance: flash shares the reference's arithmetic almost
/// exactly; the FT pipelines round checksums and intermediates through
/// binary16, so they get the half-precision budget.
fn tolerance_for(kind: &BackendKind) -> f32 {
    match kind {
        BackendKind::Reference | BackendKind::Flash => 1e-4,
        _ => 5e-3,
    }
}

#[test]
fn equivalence_matrix_every_backend_times_every_shape() {
    // ≥3 shapes, two of which have seq % block != 0 (ragged final tiles),
    // one with auto-block selection.
    let shapes: Vec<(&str, AttentionConfig)> = vec![
        (
            "even 2x4x96x32/b32",
            AttentionConfig::new(2, 4, 96, 32).with_block(32),
        ),
        (
            "ragged 1x2x80x32/b32",
            AttentionConfig::new(1, 2, 80, 32).with_block(32),
        ),
        (
            "ragged 1x2x50x16/b16",
            AttentionConfig::new(1, 2, 50, 16).with_block(16),
        ),
        (
            "auto 1x3x100x32",
            AttentionConfig::new(1, 3, 100, 32).with_auto_block(),
        ),
    ];
    for (label, cfg) in shapes {
        assert!(
            cfg.seq % cfg.block != 0 || label.starts_with("even"),
            "shape grid must keep its ragged cases ragged: {label}"
        );
        let (q, k, v) = workload(&cfg, 0xFACE ^ cfg.seq as u64);
        let req = AttentionRequest::new(cfg, &q, &k, &v);
        let reference = BackendKind::Reference.run(&req);
        for name in BackendKind::NAMES {
            let kind: BackendKind = name.parse().expect("registry name parses");
            let out = kind
                .try_run(&req)
                .unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
            let diff = out.o.max_abs_diff(&reference.o);
            let tol = tolerance_for(&kind);
            assert!(
                diff < tol,
                "{name} disagrees with reference on {label}: {diff} >= {tol}"
            );
            assert!(
                out.report.clean(),
                "{name} raised false alarms on {label}: {:?}",
                out.report
            );
        }
    }
}

#[test]
fn registry_is_total_and_round_trips() {
    assert!(BackendKind::NAMES.len() >= 5, "all kernel families listed");
    for name in BackendKind::NAMES {
        let kind: BackendKind = name.parse().unwrap();
        assert_eq!(&kind.to_string(), name);
        // Kind names match the backend's self-reported name.
        assert_eq!(&kind.name(), name);
    }
    assert!("not-a-backend".parse::<BackendKind>().is_err());
}

#[test]
fn auto_block_handles_extreme_sequences() {
    // seq smaller than the default 64 tile must still produce one valid
    // block and correct output (this was the ad-hoc `64.min(seq.max(8))`
    // logic previously buried in MultiHeadAttention::forward).
    for seq in [8usize, 12, 33, 100] {
        let cfg = AttentionConfig::new(1, 2, seq, 16).with_auto_block();
        assert!(cfg.block >= 8 && cfg.block <= 64);
        let (q, k, v) = workload(&cfg, seq as u64);
        let req = AttentionRequest::new(cfg, &q, &k, &v);
        let reference = BackendKind::Reference.run(&req);
        let efta = "efta-o".parse::<BackendKind>().unwrap().run(&req);
        let diff = efta.o.max_abs_diff(&reference.o);
        assert!(diff < 5e-3, "seq {seq}: diff {diff}");
    }
}

#[test]
fn run_batched_agrees_with_run_and_remaps_faults() {
    let cfg = AttentionConfig::new(2, 2, 64, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 777);
    let kind: BackendKind = "efta-o".parse().unwrap();
    let req = AttentionRequest::new(cfg, &q, &k, &v);
    let whole = kind.run(&req);
    let split = kind.run_batched(&req);
    assert!(split.o.max_abs_diff(&whole.o) < 1e-6);

    // A fault aimed at batched slot 2 fires exactly once after the split.
    let inj =
        SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(2, 5, 40, 3), 30).at_chain_step(20);
    let out = kind.run_batched(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
    assert_eq!(inj.fired(), 1);
    assert!(out.report.total_detected() > 0, "{:?}", out.report);
    assert!(out.o.max_abs_diff(&whole.o) < 5e-2);
}

#[test]
fn efta_rejects_sub_stride_sequences_gracefully() {
    // Through the API this is an error value, not a panic.
    let cfg = AttentionConfig::new(1, 1, 4, 16).with_block(4);
    let (q, k, v) = workload(&cfg, 5);
    let err = "efta-o"
        .parse::<BackendKind>()
        .unwrap()
        .try_run(&AttentionRequest::new(cfg, &q, &k, &v))
        .unwrap_err();
    assert!(matches!(err, BackendError::Unsupported(_)), "{err}");
}
