//! Golden-vector regression suite: fixed-seed Q/K/V fixtures with pinned
//! `reference` backend outputs, so numeric drift introduced by a future
//! refactor is *caught*, not silently absorbed by tolerance-based tests
//! that only compare kernels against each other.
//!
//! Two layers of pinning:
//! * the score GEMM `S = (scale·Q)Kᵀ` is pure multiply-add in ascending-k
//!   order — bit-exact on every IEEE-754 platform, pinned via `to_bits`;
//! * the full attention output passes through `exp` (libm, last-ulp
//!   platform-dependent), pinned against stored values at `1e-6` — far
//!   below any real numeric change, far above libm jitter.
//!
//! Regenerate after an *intentional* numeric change with:
//! `GOLDEN_GENERATE=1 cargo test --release --test golden_vectors -- --nocapture`

// The pinned constants carry full f32 decimal precision on purpose.
#![allow(clippy::excessive_precision)]

use ft_transformer_suite::attention::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::gemm_nt;

/// The fixture: 1 batch, 1 head, 12 tokens (ragged over 8-wide blocks),
/// head dim 8, seeds 1001/1002/1003, scale 1/sqrt(8).
fn fixture() -> (AttentionConfig, Tensor4F16, Tensor4F16, Tensor4F16) {
    let cfg = AttentionConfig::new(1, 1, 12, 8).with_block(8);
    let q = normal_tensor_f16(1001, 1, 1, 12, 8, 0.5);
    let k = normal_tensor_f16(1002, 1, 1, 12, 8, 0.5);
    let v = normal_tensor_f16(1003, 1, 1, 12, 8, 0.5);
    (cfg, q, k, v)
}

/// Bit patterns of S[0][0..4] and S[11][0..4] (scaled scores, row-major).
const GOLDEN_S_BITS: [u32; 8] = [
    0xbedf5317, 0xbe3e78b6, 0x3df2366a, 0x3dc63147, 0xbed17d9f, 0x3e4053c3, 0x3e31b0b6, 0x3d39b426,
];

/// Reference backend output O, all 12 × 8 elements, row-major.
const GOLDEN_O: [f32; 96] = [
    5.7872422e-2,
    -6.0357194e-2,
    2.2649512e-2,
    1.4110145e-1,
    -3.1268895e-1,
    3.3855304e-1,
    5.1626619e-2,
    1.2199715e-1,
    6.3437521e-2,
    -9.2344694e-3,
    9.5359705e-2,
    4.8818447e-2,
    -3.7098756e-1,
    4.2056686e-1,
    1.0100469e-1,
    9.7835623e-2,
    4.8987798e-2,
    -2.9795967e-2,
    4.5467176e-2,
    1.4473462e-1,
    -3.1722820e-1,
    3.9269528e-1,
    6.9075435e-2,
    1.1931336e-1,
    6.6578232e-2,
    -1.5737034e-2,
    4.2101670e-2,
    9.0180084e-2,
    -3.2701895e-1,
    3.4545350e-1,
    7.9793438e-2,
    1.2835237e-1,
    9.2354804e-2,
    -1.0020431e-1,
    6.3004389e-2,
    1.1696830e-1,
    -3.2293499e-1,
    4.6691939e-1,
    2.7383253e-2,
    7.5718373e-2,
    4.9751006e-2,
    -6.0678437e-2,
    4.4849355e-2,
    1.3947117e-1,
    -3.2881871e-1,
    4.3789598e-1,
    5.6456439e-2,
    1.1272974e-1,
    1.1955762e-2,
    -8.9525446e-2,
    3.7061732e-2,
    1.9039409e-1,
    -3.3578989e-1,
    3.7978557e-1,
    6.5935984e-2,
    8.4497675e-2,
    4.1704014e-2,
    4.2215407e-2,
    9.4706953e-2,
    6.3735247e-2,
    -3.8529238e-1,
    3.4189811e-1,
    1.3083687e-1,
    1.2483145e-1,
    -2.1948338e-2,
    -6.1892763e-2,
    -2.2226136e-2,
    2.4296330e-1,
    -2.6570323e-1,
    2.3828888e-1,
    7.4384145e-2,
    1.2680942e-1,
    1.1966595e-2,
    2.5965896e-2,
    1.2524056e-1,
    1.0164871e-1,
    -4.6854162e-1,
    3.7027431e-1,
    1.3270573e-1,
    6.0739458e-2,
    7.7885211e-2,
    2.4362944e-2,
    1.1268734e-1,
    6.5578014e-2,
    -3.5254380e-1,
    3.8923261e-1,
    1.0564531e-1,
    8.4339850e-2,
    8.5897461e-2,
    -5.3976230e-2,
    6.6428430e-2,
    7.4321881e-2,
    -3.4942144e-1,
    4.0805456e-1,
    5.7726160e-2,
    1.0963924e-1,
];

fn scaled_scores(cfg: &AttentionConfig, q: &Tensor4F16, k: &Tensor4F16) -> Vec<u32> {
    let qs = q.slot_flat(0).to_f32();
    let qm = ft_transformer_suite::num::MatrixF32::from_fn(12, 8, |i, j| qs.get(i, j) * cfg.scale);
    let s = gemm_nt(&qm, &k.slot_flat(0).to_f32());
    let mut bits = Vec::new();
    for &row in &[0usize, 11] {
        for col in 0..4 {
            bits.push(s.get(row, col).to_bits());
        }
    }
    bits
}

#[test]
fn generate_golden_vectors_when_requested() {
    if std::env::var("GOLDEN_GENERATE").is_err() {
        return;
    }
    let (cfg, q, k, v) = fixture();
    let bits = scaled_scores(&cfg, &q, &k);
    println!("const GOLDEN_S_BITS: [u32; 8] = [");
    for b in bits {
        print!("    {b:#010x},");
    }
    println!("\n];");
    let out = BackendKind::Reference.run(&AttentionRequest::new(cfg, &q, &k, &v));
    println!("const GOLDEN_O: [f32; 96] = [");
    for i in 0..12 {
        print!("   ");
        for j in 0..8 {
            print!(" {:.7e},", out.o.slot_flat(0).get(i, j));
        }
        println!();
    }
    println!("];");
}

#[test]
fn score_gemm_is_bit_exact() {
    let (cfg, q, k, _) = fixture();
    let bits = scaled_scores(&cfg, &q, &k);
    assert_eq!(
        bits,
        GOLDEN_S_BITS.to_vec(),
        "S = (scale·Q)Kᵀ drifted — pure FMA-order change or operand change"
    );
}

#[test]
fn reference_output_matches_golden_vectors() {
    let (cfg, q, k, v) = fixture();
    let out = BackendKind::Reference.run(&AttentionRequest::new(cfg, &q, &k, &v));
    for i in 0..12 {
        for j in 0..8 {
            let got = out.o.slot_flat(0).get(i, j);
            let want = GOLDEN_O[i * 8 + j];
            assert!(
                (got - want).abs() <= 1e-6,
                "O[{i}][{j}] drifted: {got:e} vs pinned {want:e}"
            );
        }
    }
}

#[test]
fn every_other_backend_stays_within_tolerance_of_the_golden_output() {
    let (cfg, q, k, v) = fixture();
    let req = AttentionRequest::new(cfg, &q, &k, &v);
    for name in BackendKind::NAMES {
        let kind: BackendKind = name.parse().unwrap();
        let out = kind.try_run(&req).unwrap_or_else(|e| panic!("{name}: {e}"));
        let tol = match kind {
            BackendKind::Reference | BackendKind::Flash => 1e-4,
            _ => 5e-3,
        };
        for i in 0..12 {
            for j in 0..8 {
                let got = out.o.slot_flat(0).get(i, j);
                let want = GOLDEN_O[i * 8 + j];
                assert!(
                    (got - want).abs() < tol,
                    "{name}: O[{i}][{j}] = {got:e} vs golden {want:e} (tol {tol})"
                );
            }
        }
    }
}
