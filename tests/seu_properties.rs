//! Property-based fault-recovery suite: randomized single-event upsets
//! across sites, coordinates, bits and workloads must never leave EFTA's
//! output non-finite, and catastrophic (exponent-range) upsets must be
//! repaired to within tolerance of the fault-free answer.

use ft_transformer_suite::attention::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, OpCoord, SeuInjector};
use proptest::prelude::*;

fn site_from_index(i: usize) -> FaultSite {
    // Sites whose single-fault repair is exact or near-exact under the
    // optimised scheme (rowsum/rescale-factor faults are approximate by
    // design and covered separately).
    const SITES: [FaultSite; 5] = [
        FaultSite::GemmIAccum,
        FaultSite::GemmIiAccum,
        FaultSite::ExpUnit,
        FaultSite::Subtract,
        FaultSite::MaxReduce,
    ];
    SITES[i % SITES.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Catastrophic SEUs (exponent bits 27..31) anywhere in the protected
    /// pipeline: output stays finite and within tolerance of fault-free.
    #[test]
    fn prop_catastrophic_seu_repaired(
        site_idx in 0usize..5,
        slot in 0usize..2,
        i in 0usize..64,
        j in 0usize..64,
        bit in 27u32..31,
        step in 0u32..32,
        seed in 0u64..300,
    ) {
        let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
        let q = normal_tensor_f16(seed, 1, 2, 64, 32, 0.6);
        let k = normal_tensor_f16(seed + 1, 1, 2, 64, 32, 0.6);
        let v = normal_tensor_f16(seed + 2, 1, 2, 64, 32, 0.8);
        let clean = BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v));

        let site = site_from_index(site_idx);
        // Coordinate conventions per site (see ft-core::efta):
        let coord = match site {
            FaultSite::GemmIAccum | FaultSite::GemmIiAccum => {
                // data GEMM of block jb has iter 3·jb; column picks block.
                OpCoord::new(slot, i, j, 3 * (j / 32))
            }
            FaultSite::ExpUnit | FaultSite::Subtract => OpCoord::new(slot, i, j, j / 32),
            FaultSite::MaxReduce => OpCoord::new(slot, i, j % 2, 0),
            _ => unreachable!(),
        };
        let inj = SeuInjector::new(site, coord, bit).at_chain_step(step);
        let out = BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
        prop_assert!(!out.o.has_non_finite(), "{site:?} left non-finite output");
        if inj.fired() > 0 {
            let diff = out.o.max_abs_diff(&clean.o);
            prop_assert!(
                diff < 0.1,
                "{site:?} at {coord:?} bit {bit}: residual {diff}"
            );
        }
    }

    /// Any-bit SEUs never produce non-finite outputs, and sub-threshold
    /// corruptions stay small (they are below the noise floor by
    /// construction).
    #[test]
    fn prop_any_seu_bounded(
        site_idx in 0usize..5,
        i in 0usize..64,
        j in 0usize..64,
        bit in 0u32..32,
        seed in 0u64..300,
    ) {
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let q = normal_tensor_f16(seed, 1, 1, 64, 32, 0.6);
        let k = normal_tensor_f16(seed + 1, 1, 1, 64, 32, 0.6);
        let v = normal_tensor_f16(seed + 2, 1, 1, 64, 32, 0.8);
        let clean = BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v));
        let site = site_from_index(site_idx);
        let coord = match site {
            FaultSite::GemmIAccum | FaultSite::GemmIiAccum => OpCoord::new(0, i, j, 3 * (j / 32)),
            FaultSite::ExpUnit | FaultSite::Subtract => OpCoord::new(0, i, j, j / 32),
            FaultSite::MaxReduce => OpCoord::new(0, i, j % 2, 0),
            _ => unreachable!(),
        };
        let inj = SeuInjector::new(site, coord, bit).at_chain_step(10);
        let out = BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
        prop_assert!(!out.o.has_non_finite());
        // Undetected faults are below the detection floor; their effect on
        // normalised attention outputs is bounded.
        let diff = out.o.max_abs_diff(&clean.o);
        prop_assert!(diff < 0.5, "{site:?} bit {bit}: diff {diff}");
    }

    /// Per-step mode satisfies the same catastrophic-repair property.
    #[test]
    fn prop_per_step_catastrophic_repaired(
        i in 0usize..64,
        j in 0usize..64,
        bit in 28u32..31,
        seed in 0u64..200,
    ) {
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let q = normal_tensor_f16(seed, 1, 1, 64, 32, 0.6);
        let k = normal_tensor_f16(seed + 1, 1, 1, 64, 32, 0.6);
        let v = normal_tensor_f16(seed + 2, 1, 1, 64, 32, 0.8);
        let clean = BackendKind::Efta(EftaOptions::per_step()).run(&AttentionRequest::new(cfg, &q, &k, &v));
        let inj = SeuInjector::new(
            FaultSite::GemmIAccum,
            OpCoord::new(0, i, j, 3 * (j / 32)),
            bit,
        )
        .at_chain_step(3);
        let out = BackendKind::Efta(EftaOptions::per_step()).run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
        prop_assert_eq!(inj.fired(), 1);
        prop_assert!(!out.o.has_non_finite());
        let diff = out.o.max_abs_diff(&clean.o);
        prop_assert!(diff < 0.1, "residual {diff}");
    }
}
