//! Draft/verify equivalence suite: speculative decoding
//! ([`SpeculationPolicy`] on a [`GenerationRequest`]) must move
//! *throughput only* — the emitted token stream is pinned bit-identical to
//! plain decode on every `BackendKind`, at forced accept rates 0, partial,
//! and full, across ragged cache blocks, mixed per-stream windows, and
//! mid-flight eviction.
//!
//! The rollback half of the contract is pinned at the cache level too:
//! checkpoint → draft → `truncate_to` → continue is indistinguishable from
//! a cache that never speculated, and a KV SEU landing in rows that are
//! subsequently rolled back leaves no trace in any post-truncation report.

mod common;

use common::{prompt, tiny_config};
use ft_transformer_suite::attention::backend::BackendKind;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::MatrixF32;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    DraftSource, EngineEvent, FinishReason, FinishedStream, GenerationRequest, ModelConfig,
    SchedulerConfig, ServeSession, SpeculationPolicy, TransformerModel,
};

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("spec-tiny", max_seq)
}

/// Drive a session to completion, returning finished streams and events.
fn run_with_events(
    session: &mut ServeSession<&TransformerModel>,
) -> (Vec<FinishedStream>, Vec<EngineEvent>) {
    let mut events = Vec::new();
    while !session.idle() {
        events.extend(session.sweep_events(&NoFaults));
    }
    (session.take_finished(), events)
}

fn run_one(model: &TransformerModel, req: GenerationRequest) -> FinishedStream {
    let mut session = model.serve();
    let id = session.submit_request(req);
    let (finished, _) = run_with_events(&mut session);
    finished.into_iter().find(|f| f.id == id).unwrap()
}

/// Corrupt every script entry whose index satisfies `miss` — the forced
/// accept-rate machinery the bench uses, reduced to a predicate.
fn corrupted(script: &[u32], vocab: u32, miss: impl Fn(usize) -> bool) -> Vec<u32> {
    script
        .iter()
        .enumerate()
        .map(|(i, &t)| if miss(i) { (t + 1) % vocab } else { t })
        .collect()
}

fn greedy(logits: &MatrixF32) -> u32 {
    logits
        .row(0)
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i as u32)
        .unwrap()
}

/// The headline pin: on **every** backend in the registry, a speculating
/// stream emits tokens bit-identical to the plain-decode run — at forced
/// accept rate 0 (every draft rejected, every sweep rolled back), partial
/// (odd-index drafts corrupted), and 1 (the plain continuation scripted
/// verbatim). The cache is ragged throughout (13-token prompt, 16-row
/// blocks), and the rollback churn itself must leave the stream's fault
/// report clean.
#[test]
fn speculative_tokens_are_bit_identical_to_plain_decode_on_every_backend() {
    let p = prompt(13, 0);
    let new_tokens = 9;
    for kind in BackendKind::all() {
        let model = TransformerModel::random(61, tiny(64), kind)
            .with_causal(true)
            .with_cache_block(16);
        let plain = run_one(&model, GenerationRequest::new(p.clone(), new_tokens));
        assert_eq!(plain.finish, FinishReason::MaxTokens);
        let continuation = plain.tokens[p.len()..].to_vec();

        let vocab = model.config.vocab as u32;
        let rates: [(&str, Vec<u32>); 3] = [
            ("full", continuation.clone()),
            ("zero", corrupted(&continuation, vocab, |_| true)),
            ("partial", corrupted(&continuation, vocab, |i| i % 2 == 1)),
        ];
        for (label, script) in rates {
            let f = run_one(
                &model,
                GenerationRequest::new(p.clone(), new_tokens).with_speculation(
                    SpeculationPolicy::new(3).with_source(DraftSource::Scripted(script)),
                ),
            );
            assert_eq!(
                f.tokens, plain.tokens,
                "{kind}/{label}: speculation changed the emitted stream"
            );
            assert_eq!(f.finish, FinishReason::MaxTokens, "{kind}/{label}");
            assert!(f.spec_drafted > 0, "{kind}/{label}: nothing was drafted");
            assert!(
                f.attention.clean(),
                "{kind}/{label}: rollback churn left a trace: {:?}",
                f.attention
            );
            match label {
                "full" => assert_eq!(f.spec_accepted, f.spec_drafted, "{kind}"),
                "zero" => assert_eq!(f.spec_accepted, 0, "{kind}"),
                _ => assert!(
                    f.spec_accepted > 0 && f.spec_accepted < f.spec_drafted,
                    "{kind}: partial script accepted {}/{}",
                    f.spec_accepted,
                    f.spec_drafted
                ),
            }
        }
    }
}

/// Speculation composes with per-stream sliding windows and the eviction
/// they force mid-decode: two windowed streams — one fed the exact plain
/// continuation (full accept), one an all-wrong script (every sweep rolled
/// back) — both finish bit-identical to their plain-decode counterparts,
/// and blocks really are evicted while the speculating sweeps run.
#[test]
fn speculation_composes_with_windows_and_mid_flight_eviction() {
    let model = TransformerModel::random(62, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(8);
    let cfg = SchedulerConfig {
        max_active: 2,
        prefill_chunk: 12,
        ..Default::default()
    };
    let prompts = [prompt(36, 2), prompt(29, 3)];
    let windows = [8usize, 20];
    let new_tokens = 6;

    let mut plain_session = model.serve_with(cfg);
    for (p, w) in prompts.iter().zip(windows) {
        plain_session.submit_request(GenerationRequest::new(p.clone(), new_tokens).with_window(w));
    }
    let (plain, _) = run_with_events(&mut plain_session);

    let mut session = model.serve_with(cfg);
    let mut ids = Vec::new();
    for (i, (p, w)) in prompts.iter().zip(windows).enumerate() {
        let continuation = plain[i].tokens[p.len()..].to_vec();
        let script = if i == 0 {
            continuation // full accept
        } else {
            corrupted(&continuation, model.config.vocab as u32, |_| true) // zero
        };
        ids.push(
            session.submit_request(
                GenerationRequest::new(p.clone(), new_tokens)
                    .with_window(w)
                    .with_speculation(
                        SpeculationPolicy::new(3).with_source(DraftSource::Scripted(script)),
                    ),
            ),
        );
    }
    let (finished, events) = run_with_events(&mut session);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EngineEvent::EvictedBlocks { .. })),
        "the windowed streams must actually evict mid-flight: {events:?}"
    );
    for (i, id) in ids.iter().enumerate() {
        let f = finished.iter().find(|f| f.id == *id).unwrap();
        assert_eq!(
            f.tokens, plain[i].tokens,
            "stream {i}: windowed speculation diverged from plain decode"
        );
        assert_eq!(f.finish, FinishReason::MaxTokens, "stream {i}");
        assert!(f.spec_drafted > 0, "stream {i}");
    }
    // The full-accept stream really amortized sweeps; the zero-accept
    // stream really rolled every draft back.
    let accepted = |id| finished.iter().find(|f| f.id == id).unwrap().spec_accepted;
    assert!(accepted(ids[0]) > 0);
    assert_eq!(accepted(ids[1]), 0);
}

/// Self-drafting (`DraftSource::NGram`) obeys the same contract with no
/// oracle script: whatever the n-gram guesser proposes, the emitted stream
/// is the plain-decode stream — on every backend. A strongly repetitive
/// prompt gives the bigram matcher real hits, so drafts are both produced
/// and (on repetitive continuations) sometimes accepted.
#[test]
fn ngram_self_drafting_never_changes_the_emitted_stream() {
    let p: Vec<u32> = (0..17).map(|t| [5u32, 9, 13, 2][t % 4]).collect();
    let new_tokens = 8;
    for kind in BackendKind::all() {
        let model = TransformerModel::random(63, tiny(64), kind)
            .with_causal(true)
            .with_cache_block(16);
        let plain = run_one(&model, GenerationRequest::new(p.clone(), new_tokens));
        let f = run_one(
            &model,
            GenerationRequest::new(p.clone(), new_tokens)
                .with_speculation(SpeculationPolicy::new(4).with_backoff(None)),
        );
        assert_eq!(f.tokens, plain.tokens, "{kind}: n-gram drafting diverged");
        assert!(f.spec_drafted > 0, "{kind}");
    }
}

/// Cache-level half of the contract: checkpoint → feed provisional tokens
/// → `truncate_to` → continue is bit-indistinguishable from a cache that
/// never speculated. The detour crosses a block boundary (13 → 17 rows,
/// 16-row blocks), so the rollback exercises both the whole-block drop and
/// the ragged boundary re-encode.
#[test]
fn rollback_then_continue_matches_a_never_speculated_cache() {
    let model = TransformerModel::random(64, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let p = prompt(13, 6);
    let mut plain_cache = model.new_cache();
    let mut spec_cache = model.new_cache();
    let mut logits = None;
    for &t in &p {
        let (a, _) = model.decode_step(t, &mut plain_cache, &NoFaults);
        let (b, _) = model.decode_step(t, &mut spec_cache, &NoFaults);
        assert_eq!(a, b);
        logits = Some(a);
    }

    let mark = spec_cache.checkpoint();
    assert_eq!(mark.position(), p.len());
    for draft in [90u32, 91, 92, 93] {
        model.decode_step(draft, &mut spec_cache, &NoFaults);
    }
    assert_eq!(spec_cache.positions(), p.len() + 4);
    let heal = spec_cache.truncate_to(mark);
    assert!(
        heal.clean(),
        "clean drafts must roll back silently: {heal:?}"
    );
    assert_eq!(spec_cache.positions(), p.len());
    assert_eq!(spec_cache.size_bytes(), plain_cache.size_bytes());

    for _ in 0..6 {
        let t = greedy(logits.as_ref().unwrap());
        let (a, _) = model.decode_step(t, &mut plain_cache, &NoFaults);
        let (b, rep) = model.decode_step(t, &mut spec_cache, &NoFaults);
        assert_eq!(a, b, "post-rollback logits diverged from never-speculated");
        assert_eq!(rep.cache_uncorrectable, 0);
        logits = Some(a);
    }
    assert_eq!(spec_cache.poisoned(), 0);
}

/// A KV SEU that lands in a *drafted* row leaves no trace once the draft
/// is rolled back: the flip demonstrably fires (and is detected while the
/// detour runs), but after `truncate_to` the damaged row no longer exists —
/// the continuation is bit-identical to the never-speculated cache and
/// every post-truncation report is clean.
#[test]
fn seu_in_a_rolled_back_draft_row_leaves_no_trace_after_truncation() {
    let model = TransformerModel::random(65, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let p = prompt(13, 7);
    let mut plain_cache = model.new_cache();
    let mut spec_cache = model.new_cache();
    let mut logits = None;
    for &t in &p {
        let (a, _) = model.decode_step(t, &mut plain_cache, &NoFaults);
        model.decode_step(t, &mut spec_cache, &NoFaults);
        logits = Some(a);
    }

    // Aim at the first drafted row (global row 13) of layer 0's K payload,
    // exposed at the second draft step (position 14, 2 layers): the flip
    // can only ever land in provisional state.
    let layers = 2u64;
    let step = (p.len() as u64 + 1) * layers;
    let coord = OpCoord {
        slot: 0,
        i: p.len() as u64,
        j: 3,
        k: 2 * step,
    };
    let inj = SeuInjector::new(FaultSite::KvCache, coord, 13);

    let mark = spec_cache.checkpoint();
    model.decode_step(90, &mut spec_cache, &inj);
    let (_, detour_rep) = model.decode_step(91, &mut spec_cache, &inj);
    assert_eq!(inj.fired(), 1, "the SEU must land in the drafted row");
    assert!(
        detour_rep.total_detected >= 1,
        "the flip is seen while the detour runs: {detour_rep:?}"
    );

    let heal = spec_cache.truncate_to(mark);
    assert_eq!(
        heal.uncorrectable, 0,
        "a single flip in a dropped row is never poison: {heal:?}"
    );
    assert_eq!(spec_cache.poisoned(), 0);
    assert_eq!(spec_cache.positions(), p.len());

    // Post-truncation: bit-identical to the never-speculated cache, with
    // nothing on any report.
    for _ in 0..6 {
        let t = greedy(logits.as_ref().unwrap());
        let (a, ra) = model.decode_step(t, &mut plain_cache, &NoFaults);
        let (b, rb) = model.decode_step(t, &mut spec_cache, &NoFaults);
        assert_eq!(a, b, "the rolled-back SEU left a trace in the logits");
        assert_eq!(rb.total_detected, ra.total_detected);
        assert_eq!(rb.cache_uncorrectable, 0);
        logits = Some(a);
    }
    assert_eq!(spec_cache.poisoned(), 0);
}
