//! Push-based serving-loop suite: the `Engine` worker thread must deliver
//! every stream's events over its bounded channel with output equal to
//! the stepwise decode oracle, stay live under bursty arrivals with a
//! tight memory budget and full channels (no deadlock, no dropped
//! stream), and let a `Latency` arrival preempt long `Batch` work — with
//! the preempted streams still bit-identical.

mod common;

use common::{prompt, stepwise_generate, tiny_config};
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::transformer::{
    BackendKind, Engine, EngineConfig, EngineEvent, FinishReason, GenerationRequest, Priority,
    SchedulerConfig, StreamHandle, TransformerModel,
};
use std::time::{Duration, Instant};

fn tiny_model(seed: u64, max_seq: usize) -> TransformerModel {
    TransformerModel::random(
        seed,
        tiny_config("engine-tiny", max_seq),
        BackendKind::Efta(EftaOptions::optimized()),
    )
    .with_causal(true)
}

/// The generated suffix the engine should emit for this workload (the
/// stepwise oracle echoes the prompt; `TokenEmitted` events do not).
fn oracle(model: &TransformerModel, p: &[u32], new_tokens: usize) -> Vec<u32> {
    stepwise_generate(model, p, new_tokens)[p.len()..].to_vec()
}

/// Drain a handle with a wall-clock deadline so a liveness bug fails the
/// test instead of hanging it. Returns (tokens, finish, preemptions).
fn drain_by(handle: &StreamHandle, deadline: Instant) -> (Vec<u32>, Option<FinishReason>, u32) {
    let mut tokens = Vec::new();
    let mut preemptions = 0;
    loop {
        assert!(
            Instant::now() < deadline,
            "stream {} stalled: {} tokens so far, no Finished event",
            handle.id(),
            tokens.len()
        );
        match handle.recv_timeout(Duration::from_millis(250)) {
            Some(EngineEvent::TokenEmitted { token, .. }) => tokens.push(token),
            Some(EngineEvent::Preempted { .. }) => preemptions += 1,
            Some(EngineEvent::Finished { reason, .. }) => {
                return (tokens, Some(reason), preemptions)
            }
            Some(_) => {}
            None => {}
        }
    }
}

/// Streams submitted through the engine deliver, over their channels, the
/// same tokens the stepwise decode oracle produces, ending in `Finished:
/// max-tokens` — the push-mode loop is output-equivalent to pull-mode.
#[test]
fn engine_handles_deliver_oracle_tokens() {
    let model = tiny_model(61, 96);
    let jobs: Vec<(Vec<u32>, usize)> =
        [(20usize, 0usize, 5usize), (33, 1, 4), (9, 2, 6), (27, 3, 3)]
            .iter()
            .map(|&(len, salt, n)| (prompt(len, salt), n))
            .collect();
    let want: Vec<Vec<u32>> = jobs.iter().map(|(p, n)| oracle(&model, p, *n)).collect();

    let engine = Engine::spawn(
        model,
        EngineConfig {
            scheduler: SchedulerConfig {
                max_active: 2,
                prefill_chunk: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let handles: Vec<_> = jobs
        .iter()
        .map(|(p, n)| engine.submit(GenerationRequest::new(p.clone(), *n)))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.priority(), Priority::Normal);
        let outcome = h.wait();
        assert_eq!(outcome.tokens, want[i], "stream {i} diverged from oracle");
        assert_eq!(outcome.finish, Some(FinishReason::MaxTokens), "stream {i}");
        assert!(
            matches!(outcome.events.last(), Some(EngineEvent::Finished { .. })),
            "stream {i}: Finished must be the last event"
        );
    }
    engine.shutdown();
}

/// Liveness under pressure: a burst of mixed-priority arrivals into a
/// one-event channel per stream, a memory budget that cannot hold the
/// whole batch, and consumers drained strictly one at a time (so most
/// channels sit full for most of the run). Nothing deadlocks, nothing is
/// dropped: every stream reaches `Finished` with oracle-exact tokens.
#[test]
fn bursty_arrivals_with_full_channels_and_tight_budget_all_finish() {
    let model = tiny_model(62, 96);
    let classes = [
        Priority::Batch,
        Priority::Normal,
        Priority::Latency,
        Priority::Normal,
        Priority::Batch,
        Priority::Latency,
        Priority::Normal,
        Priority::Batch,
    ];
    let jobs: Vec<(Vec<u32>, usize)> = (0..classes.len()).map(|i| (prompt(10 + i, i), 6)).collect();
    let want: Vec<Vec<u32>> = jobs.iter().map(|(p, n)| oracle(&model, p, *n)).collect();

    // 2 slots, a budget of roughly two streams' caches (bytes/token =
    // 4 · hidden · layers = 256), one-event channels, and instant parking
    // of any stream whose consumer lags — maximum scheduler churn.
    let engine = Engine::spawn(
        model,
        EngineConfig {
            scheduler: SchedulerConfig {
                max_active: 2,
                prefill_chunk: 8,
                memory_budget: Some(10_000),
                preempt: true,
                priority_aging: Some(4),
            },
            channel_capacity: 1,
            park_after_held_sweeps: 1,
        },
    );
    let handles: Vec<_> = jobs
        .iter()
        .zip(&classes)
        .map(|((p, n), &class)| {
            engine.submit(GenerationRequest::new(p.clone(), *n).with_priority(class))
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    for (i, h) in handles.iter().enumerate() {
        let (tokens, finish, _) = drain_by(h, deadline);
        assert_eq!(tokens, want[i], "stream {i} diverged under pressure");
        assert_eq!(finish, Some(FinishReason::MaxTokens), "stream {i}");
    }
}

/// A `Latency` arrival parks long-running `Batch` work (observable as
/// `Preempted` in the batch streams' event logs) — and the parked streams
/// still finish bit-identical to their uninterrupted oracles.
#[test]
fn latency_arrival_preempts_batch_work_without_changing_output() {
    let model = tiny_model(63, 128);
    let batch_prompts = [prompt(14, 0), prompt(11, 1)];
    let urgent_prompt = prompt(9, 2);
    let batch_want: Vec<Vec<u32>> = batch_prompts
        .iter()
        .map(|p| oracle(&model, p, 24))
        .collect();
    let urgent_want = oracle(&model, &urgent_prompt, 4);

    let engine = Engine::spawn(
        model,
        EngineConfig {
            scheduler: SchedulerConfig {
                max_active: 1,
                prefill_chunk: 16,
                preempt: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let batch_handles: Vec<_> = batch_prompts
        .iter()
        .map(|p| {
            engine.submit(GenerationRequest::new(p.clone(), 24).with_priority(Priority::Batch))
        })
        .collect();
    // Wait until batch work is demonstrably active (first token emitted)
    // before the urgent request arrives — the preemption window, made
    // deterministic by observing the stream instead of sleeping.
    let first_batch_event = batch_handles[0]
        .recv_timeout(Duration::from_secs(30))
        .expect("batch stream must start");
    let first_batch_token = match first_batch_event {
        EngineEvent::TokenEmitted { token, .. } => token,
        other => panic!("expected the first event to be a token, got {other}"),
    };
    let urgent = engine.submit_with_priority(
        GenerationRequest::new(urgent_prompt.clone(), 4),
        Priority::Latency,
    );

    let urgent_outcome = urgent.wait();
    assert_eq!(urgent_outcome.tokens, urgent_want, "urgent stream diverged");
    assert_eq!(
        urgent_outcome.preemptions, 0,
        "the urgent stream never parks"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut total_preemptions = 0;
    for (i, h) in batch_handles.iter().enumerate() {
        let (mut tokens, finish, preemptions) = drain_by(h, deadline);
        if i == 0 {
            tokens.insert(0, first_batch_token);
        }
        assert_eq!(
            tokens, batch_want[i],
            "batch stream {i} diverged after preemption"
        );
        assert_eq!(finish, Some(FinishReason::MaxTokens), "batch stream {i}");
        total_preemptions += preemptions;
    }
    assert!(
        total_preemptions >= 1,
        "the latency arrival must actually park batch work"
    );
}
