//! Facade crate for the FT-Transformer reproduction suite.
//!
//! Re-exports every member crate under a single roof so examples and
//! integration tests can use one dependency.
//!
//! The front door is the unified attention backend API in
//! [`attention::backend`]: build an
//! [`AttentionRequest`](attention::backend::AttentionRequest), select a
//! [`BackendKind`](attention::backend::BackendKind) by variant or by name
//! (`"reference"`, `"flash"`, `"decoupled"`, `"efta"`, `"efta-o"`, …), and
//! [`run`](attention::backend::AttentionBackend::run) it:
//!
//! ```
//! use ft_transformer_suite::attention::backend::{
//!     AttentionBackend, AttentionRequest, BackendKind,
//! };
//! use ft_transformer_suite::attention::config::AttentionConfig;
//! use ft_transformer_suite::num::rng::normal_tensor_f16;
//!
//! let cfg = AttentionConfig::new(1, 2, 64, 32).with_auto_block();
//! let q = normal_tensor_f16(1, 1, 2, 64, 32, 0.5);
//! let k = normal_tensor_f16(2, 1, 2, 64, 32, 0.5);
//! let v = normal_tensor_f16(3, 1, 2, 64, 32, 0.5);
//!
//! let backend: BackendKind = "efta-o".parse().unwrap();
//! let out = backend.run(&AttentionRequest::new(cfg, &q, &k, &v));
//! assert!(out.report.clean());
//! ```
//!
//! The same enum drives the transformer stack
//! ([`transformer::TransformerModel::random`] takes a `BackendKind`), the
//! fault-injection campaigns in [`inject`], and every figure/table binary
//! in the `ft-bench` crate.

pub use ft_abft as abft;
pub use ft_core as attention;
pub use ft_inject as inject;
pub use ft_num as num;
pub use ft_sim as sim;
pub use ft_transformer as transformer;
