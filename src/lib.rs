//! Facade crate for the FT-Transformer reproduction suite.
//!
//! Re-exports every member crate under a single roof so examples and
//! integration tests can use one dependency.

pub use ft_abft as abft;
pub use ft_core as attention;
pub use ft_inject as inject;
pub use ft_num as num;
pub use ft_sim as sim;
pub use ft_transformer as transformer;
