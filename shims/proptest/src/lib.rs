//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace ships the
//! property-testing subset it uses: the [`proptest!`] macro over functions
//! whose parameters are drawn from range strategies, `prop::sample::select`
//! and `prop::bool::ANY`, plus [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name) instead of an entropy source,
//! and there is no shrinking — a failing case panics with the regular
//! assert message, which together with determinism is enough to reproduce
//! and debug.

#![warn(missing_docs)]

/// What callers import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Per-block configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default is 256; these in-process numeric properties are
        // cheap, so match it.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case RNG (SplitMix64 seeded from the test name).
pub mod rng {
    /// Deterministic RNG driving case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name, so every test has its own fixed stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::Range;

    /// A source of random values for one proptest parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, u16, u8, i32, i64);

    macro_rules! float_strategy {
        ($($t:ty => $bits:expr),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let frac = (rng.next_u64() >> (64 - $bits)) as $t
                        / (1u64 << $bits) as $t;
                    let v = self.start + (self.end - self.start) * frac;
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }

    float_strategy!(f32 => 24, f64 => 53);
}

/// The `prop::` namespace (`prop::sample::select`, `prop::bool::ANY`).
pub mod prop {
    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// Strategy drawing uniformly from a fixed list.
        #[derive(Clone, Debug)]
        pub struct Select<T>(Vec<T>);

        /// Uniform choice among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// Strategy yielding `true` or `false` with equal probability.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Assert inside a property; panics (no shrinking) with the case values in
/// scope of the message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..17,
            b in -2.5f32..2.5,
            flag in prop::bool::ANY,
            pick in prop::sample::select(vec![16usize, 24, 32]),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            let _: bool = flag;
            prop_assert!([16, 24, 32].contains(&pick));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x < 10, true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng::TestRng::deterministic("t");
        let mut b = crate::rng::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
