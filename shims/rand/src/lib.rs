//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace ships
//! the small API subset it actually uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and uniform [`Rng::gen_range`] sampling
//! over integer and float ranges. The generator is SplitMix64 — not the
//! same stream as upstream `SmallRng`, but deterministic, well mixed, and
//! more than adequate for seeded workload generation and fault-injection
//! campaigns.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 2^-53 / 2^-24 resolution fraction in [0, 1).
                let frac = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                let v = self.start + (self.end - self.start) * frac;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range!(f32 => 24, f64 => 53);

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(13u32..32);
            assert!((13..32).contains(&v));
            let f = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.gen_range(0usize..=8);
            assert!(i <= 8);
        }
    }

    #[test]
    fn float_samples_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
