//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so this workspace ships the
//! parallel-iterator subset it uses: `into_par_iter()` on ranges and
//! vectors, with `map`, `enumerate`, `collect`, `reduce` and `for_each`.
//!
//! Unlike upstream rayon's work-stealing pool, this implementation is an
//! eager fork-join: `map` materialises its input, deals the items to one
//! strided bucket per available core (worker `w` takes items
//! `w, w + workers, …` — so neighbouring expensive items spread across
//! workers instead of piling onto one contiguous chunk), and runs the
//! buckets on `std::thread::scope` threads.
//! Nested calls (a parallel region inside a worker thread) degrade to
//! sequential execution instead of oversubscribing, which bounds the thread
//! count to one level of fan-out — the same discipline rayon's shared pool
//! enforces by construction.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

/// The traits and types callers import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    static THREAD_WORKERS: Cell<usize> = const { Cell::new(0) };
}

/// Cap the fan-out of parallel regions entered **from this thread** to at
/// most `n` workers (`0` removes the cap). A sharded serving fleet sets
/// this on each shard thread to `cores / shards`, so N shards each running
/// parallel sweeps compose to roughly one worker per core instead of N ×
/// cores oversubscription. Scope threads spawned by a parallel region do
/// not inherit the cap — they run nested regions sequentially anyway.
pub fn set_thread_workers(n: usize) {
    THREAD_WORKERS.with(|w| w.set(n));
}

/// Process-wide default worker cap from the `FT_RAYON_WORKERS` environment
/// variable, read once. `0`, unset, or unparsable means "no cap" (use
/// every available core). CI's small containers set this to keep the
/// bench's fleet workers × sweep workers within their cpuset.
fn env_workers() -> usize {
    use std::sync::OnceLock;
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("FT_RAYON_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

fn worker_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let capped = match env_workers() {
        0 => cores,
        env => cores.min(env),
    };
    match THREAD_WORKERS.with(Cell::get) {
        0 => capped,
        cap => capped.min(cap),
    }
}

/// Run `f` over `items` in parallel, preserving order.
///
/// Work is assigned to workers in a **strided** round-robin (worker `w`
/// takes items `w, w + workers, w + 2·workers, …`), not in contiguous
/// chunks. Serving sweeps order their work units by stream, so with
/// contiguous chunking one long-cache stream's expensive neighbouring
/// units all landed on a single worker while the workers holding short
/// streams sat idle; striding interleaves every stream's units across all
/// workers, which bounds the imbalance to one unit regardless of how
/// ragged the per-unit costs are.
fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count().min(n);
    if n <= 1 || workers <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers)
        .map(|_| Vec::with_capacity(n.div_ceil(workers)))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push((i, item));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => {
                    for (i, u) in part {
                        out[i] = Some(u);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter()
            .map(|u| u.expect("every index produced exactly once"))
            .collect()
    })
}

/// An eager "parallel iterator" over an owned item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; the work happens here, one chunk per core.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    /// Pair every item with its index (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Collect the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Fold all items into one value; `identity` seeds the fold exactly as
    /// rayon's `reduce` does.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Run `f` on every item in parallel for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, f);
    }
}

/// Conversion into a [`ParIter`]; the `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;

    /// Convert into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_par_iter!(usize, u64, u32, i32);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let total = (0..100u64)
            .into_par_iter()
            .map(|i| i * i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100u64).map(|i| i * i).sum());
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn nested_parallelism_does_not_explode() {
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                (0..64usize)
                    .into_par_iter()
                    .map(move |j| i + j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert!(out.iter().all(|&n| n == 64));
    }

    #[test]
    fn ragged_costs_spread_across_workers() {
        // Pathological serving-sweep cost profile: one contiguous run of
        // expensive items (a long-cache stream's work units) followed by
        // near-free ones. Under the old contiguous chunking the expensive
        // run was exactly worker 0's chunk; strided assignment must deal
        // it across at least two workers. Deterministic by construction —
        // no wall-clock measurement involved.
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;
        let workers = crate::worker_count();
        if workers < 2 {
            return; // single-core runner: nothing to spread
        }
        let n = 64usize;
        // The contiguous-chunking chunk length: the old scheme put items
        // 0..chunk_len all on the first worker. Floor of 2 so the spread
        // assertion is meaningful even on very-many-core machines.
        let chunk_len = n.div_ceil(workers.min(n)).max(2);
        let expensive_threads: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<u64> = (0..n)
            .into_par_iter()
            .map(|i| {
                if i < chunk_len {
                    expensive_threads
                        .lock()
                        .unwrap()
                        .insert(std::thread::current().id());
                    (0..10_000u64).fold(i as u64, |a, b| a ^ b.wrapping_mul(31))
                } else {
                    i as u64
                }
            })
            .collect();
        assert_eq!(out.len(), n, "order-preserving output intact");
        assert!(
            expensive_threads.lock().unwrap().len() >= 2,
            "the expensive contiguous run must be dealt across workers"
        );
    }

    #[test]
    fn thread_worker_cap_degrades_to_sequential() {
        // A cap of 1 must force sequential execution on this thread (no
        // scope threads at all) while leaving other threads uncapped.
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        crate::set_thread_workers(1);
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                i + 1
            })
            .collect();
        crate::set_thread_workers(0);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        assert_eq!(
            seen.lock().unwrap().len(),
            1,
            "capped region must stay on the calling thread"
        );
        // The cap is thread-local: a fresh thread is uncapped.
        let other = std::thread::spawn(|| {
            let out: Vec<usize> = (0..8usize).into_par_iter().map(|i| i).collect();
            out.len()
        })
        .join()
        .unwrap();
        assert_eq!(other, 8);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let _: Vec<usize> = (0..16usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    panic!("worker boom");
                }
                i
            })
            .collect();
    }
}
