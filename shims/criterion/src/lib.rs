//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace ships the
//! harness subset its benches use: [`Criterion::benchmark_group`] with
//! `sample_size`/`measurement_time`, [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Timing is
//! best-of-samples wall clock — no statistics, no HTML reports — which is
//! enough to compare kernel variants by eye.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, Duration::from_secs(2), f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bound the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// End the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, samples: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        best: f64::INFINITY,
        iters: 0,
        samples,
        budget,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {name:<28} (no iterations)");
    } else {
        println!(
            "  {name:<28} best {:>12.3} µs over {} iters",
            bencher.best * 1e6,
            bencher.iters
        );
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    best: f64,
    iters: u64,
    samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `f` repeatedly; the recorded figure is the best single run.
    pub fn iter<T, F>(&mut self, mut f: F)
    where
        F: FnMut() -> T,
    {
        // One untimed warm-up.
        black_box(f());
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            self.best = self.best.min(dt);
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut count = 0u32;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count >= 4, "warmup + at least one sample, got {count}");
    }
}
