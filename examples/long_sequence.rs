//! Long-sequence inference: the decoupled baseline materialises O(n²) score
//! tensors in HBM and dies with OOM exactly where the paper's Fig. 9 shows;
//! the fused EFTA kernel streams blocks in O(n) memory and keeps going.
//!
//! Both pipelines run through the same `AttentionBackend` API — the
//! decoupled one simply returns `Err(BackendError::Oom)` from `try_run`
//! when its request does not fit the device.
//!
//! ```sh
//! cargo run --release --example long_sequence
//! ```

use ft_transformer_suite::attention::backend::{
    AttentionBackend, AttentionRequest, BackendError, BackendKind,
};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::decoupled::{hbm_demand, DecoupledOptions};
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::sim::device::Device;

fn main() {
    // Paper-scale memory demands on the 40 GB A100 (analytic; no compute).
    println!("decoupled pipeline HBM demand at paper scale (h=32, d=128):");
    for seq in [4096usize, 8192, 16384] {
        let cfg = AttentionConfig::large(1, seq).with_total_tokens(16 * 1024);
        let need = hbm_demand(&cfg, true) as f64 / (1u64 << 30) as f64;
        let fits = hbm_demand(&cfg, true) <= Device::a100_40gb().hbm.capacity();
        println!(
            "  seq {seq:>6}: {need:>7.1} GiB -> {}",
            if fits { "fits" } else { "OOM" }
        );
    }

    // A scaled device shows the same crossover live.
    let dev = Device::with_capacity((40u64 << 30) / 16384);
    let decoupled = BackendKind::Decoupled(DecoupledOptions::default());
    let efta = BackendKind::Efta(EftaOptions::optimized());
    println!("\nrunning on a 1/16384-capacity device (~2.6 MiB) to show the crossover:");
    for seq in [128usize, 256, 512] {
        let cfg = AttentionConfig::new(1, 4, seq, 64);
        let q = normal_tensor_f16(1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let k = normal_tensor_f16(2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let v = normal_tensor_f16(3, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
        let req = AttentionRequest::new(cfg, &q, &k, &v);

        let dec_result = decoupled.try_run(&req.with_device(&dev));
        let efta_out = efta.run(&req);
        println!(
            "  seq {seq:>4}: decoupled = {:<28} EFTA = ok (report clean: {})",
            match &dec_result {
                Ok(_) => "ok".to_string(),
                Err(BackendError::Oom(e)) => format!(
                    "OOM ({:.1} MiB over)",
                    (e.requested + e.in_use - e.capacity) as f64 / (1 << 20) as f64
                ),
                Err(other) => format!("error: {other}"),
            },
            efta_out.report.clean(),
        );
    }
    println!("\nEFTA's O(n) streaming survives where the decoupled pipeline OOMs.");
}
