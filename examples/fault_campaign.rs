//! Fault-injection campaign: sweep bit-error rates over protected GEMMs and
//! print the error-coverage comparison between the paper's 8-wide tensor
//! checksum and the traditional 1-wide element checksum (Fig. 12 regime).
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```

use ft_transformer_suite::abft::thresholds::Check;
use ft_transformer_suite::inject::{coverage_campaign, GemmShape, Scheme};

fn main() {
    let shape = GemmShape {
        br: 64,
        bc: 4096,
        d: 64,
    };
    let chk = Check::new(0.02, 1e-3);
    let trials = 60;
    println!(
        "coverage vs per-bit BER (rows 4096 wide, {} trials/point):\n",
        trials
    );
    println!(
        "{:>8}  {:>16} {:>8}  {:>16} {:>8}",
        "BER", "tensor coverage", "faults", "element coverage", "faults"
    );
    for ber in [1e-8f64, 5e-8, 1e-7] {
        let t = coverage_campaign(trials, 1, ber * 32.0, Scheme::Tensor, shape, chk);
        let e = coverage_campaign(trials, 1, ber * 32.0, Scheme::Element, shape, chk);
        println!(
            "{:>8.0e}  {:>15.1}% {:>8}  {:>15.1}% {:>8}",
            ber,
            t.coverage() * 100.0,
            t.injected,
            e.coverage() * 100.0,
            e.injected
        );
    }
    println!("\nthe 8-wide tensor checksum repairs multi-fault rows the 1-wide cannot.");
}
