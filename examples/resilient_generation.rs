//! Resilient transformer inference: run a GPT-2-shaped model (scaled down)
//! under continuous soft-error bombardment, with and without the
//! FT-Transformer protection stack, and compare the generated tokens
//! against the fault-free run.
//!
//! ```sh
//! cargo run --release --example resilient_generation
//! ```

use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::sim::{BerInjector, FaultInjector, FaultSite, NoFaults};
use ft_transformer_suite::transformer::{
    BackendKind, LinearProtection, ModelConfig, TransformerModel,
};

fn main() {
    // A GPT-2-shaped model, scaled for a quick demo (12 heads kept).
    let cfg = ModelConfig::gpt2().scaled(192, 2);
    let prompt: Vec<u32> = (0..24).map(|i| (i * 97) % cfg.vocab as u32).collect();
    let new_tokens = 8;

    // Fault-free reference generation. The vocab-wide LM head dominates
    // the model's op count, so this demo protects it too.
    let mut protected =
        TransformerModel::random(7, cfg, BackendKind::Efta(EftaOptions::optimized()));
    protected.lm_head.protection = LinearProtection::StridedAbft;
    let (reference, _) = protected.generate(&prompt, new_tokens, &NoFaults);
    println!("reference tokens:  {:?}", &reference[prompt.len()..]);

    // Soft errors across GEMM accumulations. Exponent-range flips:
    // catastrophic magnitude, the failures that destroy inference.
    let make_injector = |seed: u64| {
        BerInjector::new(seed, 3e-7)
            .with_sites(&[
                FaultSite::GemmIAccum,
                FaultSite::GemmIiAccum,
                FaultSite::LinearAccum,
            ])
            .with_bit_range(27, 32)
    };

    // Protected model under fire.
    let inj = make_injector(99);
    let (tokens_ft, report) = protected.generate(&prompt, new_tokens, &inj);
    println!(
        "protected + BER:   {:?}  (faults fired {}, detected {}, repaired {})",
        &tokens_ft[prompt.len()..],
        inj.fired(),
        report.total_detected,
        report.total_repaired
    );

    // Unprotected model under the same fire.
    let mut bare = TransformerModel::random(7, cfg, BackendKind::Flash);
    for b in &mut bare.blocks {
        b.mha.wq.protection = LinearProtection::None;
        b.mha.wk.protection = LinearProtection::None;
        b.mha.wv.protection = LinearProtection::None;
        b.mha.wo.protection = LinearProtection::None;
        b.ffn.up.protection = LinearProtection::None;
        b.ffn.down.protection = LinearProtection::None;
    }
    let inj2 = make_injector(99);
    let (tokens_bare, _) = bare.generate(&prompt, new_tokens, &inj2);
    println!(
        "unprotected + BER: {:?}  (faults fired {})",
        &tokens_bare[prompt.len()..],
        inj2.fired()
    );

    let ft_match = tokens_ft == reference;
    let bare_match = tokens_bare == reference;
    println!("\nprotected output matches fault-free: {ft_match}");
    println!("unprotected output matches fault-free: {bare_match}");
}
