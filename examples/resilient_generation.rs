//! Resilient transformer inference over the checksum-protected KV-cache
//! decode path: run a GPT-2-shaped model (scaled down) under continuous
//! soft-error bombardment — including faults landing in cache-resident
//! K/V state between steps — and compare the generated tokens against the
//! fault-free run.
//!
//! ```sh
//! cargo run --release --example resilient_generation
//! ```

use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::sim::{BerInjector, FaultInjector, FaultSite, NoFaults};
use ft_transformer_suite::transformer::{
    BackendKind, LinearProtection, ModelConfig, TransformerModel,
};

fn main() {
    // A GPT-2-shaped model, scaled for a quick demo (12 heads kept).
    // Causal, so the cached decode path and full prefill compute the same
    // function — which the smoke check below asserts.
    let cfg = ModelConfig::gpt2().scaled(192, 2);
    let prompt: Vec<u32> = (0..24).map(|i| (i * 97) % cfg.vocab as u32).collect();
    let new_tokens = 8;

    // Fault-free reference generation over the KV-cache decode path. The
    // vocab-wide LM head dominates the model's op count, so this demo
    // protects it too.
    let mut protected =
        TransformerModel::random(7, cfg, BackendKind::Efta(EftaOptions::optimized()))
            .with_causal(true);
    protected.lm_head.protection = LinearProtection::StridedAbft;
    let (reference, _) = protected.generate(&prompt, new_tokens, &NoFaults);
    println!("reference tokens:  {:?}", &reference[prompt.len()..]);

    // Smoke check: decode over the cache must equal a causal prefill. The
    // flash model shares no kernel code path with the cached EFTA decode,
    // so agreement here pins the whole prefill↔decode contract.
    let flash = TransformerModel::random(7, cfg, BackendKind::Flash).with_causal(true);
    let (prefill_logits, _) = flash.forward(&prompt, &NoFaults);
    let mut cache = flash.new_cache();
    let mut decode_logits = None;
    for &t in &prompt {
        decode_logits = Some(flash.decode_step(t, &mut cache, &NoFaults).0);
    }
    let decode_logits = decode_logits.expect("non-empty prompt");
    let logit_diff: f32 = decode_logits
        .row(0)
        .iter()
        .zip(prefill_logits.row(prompt.len() - 1))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    println!("prefill vs decode logit diff: {logit_diff:.2e}");
    assert!(
        logit_diff < 2e-2,
        "KV-cache decode must reproduce causal prefill logits (diff {logit_diff})"
    );
    let overhead = 100.0 * cache.checksum_bytes() as f64 / cache.size_bytes() as f64;
    println!(
        "cache checksum metadata: {overhead:.1}% of FP16 payload at head dim 16 \
         (shrinks with head dim; the paper's dim-64 heads sit near 50%)\n"
    );

    // Soft errors across GEMM accumulations *and* cache-resident K/V state.
    // Exponent-range flips in the GEMMs: catastrophic magnitude, the
    // failures that destroy inference; uniform flips in the cache, the
    // long-residency corruption a serving system accumulates.
    let make_injector = |seed: u64| {
        BerInjector::new(seed, 3e-7)
            .with_sites(&[
                FaultSite::GemmIAccum,
                FaultSite::GemmIiAccum,
                FaultSite::LinearAccum,
                FaultSite::KvCache,
            ])
            .with_bit_range(27, 32)
    };

    // Protected model under fire.
    let inj = make_injector(99);
    let (tokens_ft, report) = protected.generate(&prompt, new_tokens, &inj);
    println!(
        "protected + BER:   {:?}  (faults fired {}, detected {}, repaired {})",
        &tokens_ft[prompt.len()..],
        inj.fired(),
        report.total_detected,
        report.total_repaired
    );

    // Unprotected model under the same fire. Its reference decode reads
    // the cache raw and runs no GEMM checksums; note the checksummed store
    // itself still heals its trailing block at each append (a property of
    // the storage layer, not the kernel), so what this run demonstrates is
    // the exposure of the unprotected *compute* path.
    let mut bare = TransformerModel::random(7, cfg, BackendKind::Flash).with_causal(true);
    for b in &mut bare.blocks {
        b.mha.wq.protection = LinearProtection::None;
        b.mha.wk.protection = LinearProtection::None;
        b.mha.wv.protection = LinearProtection::None;
        b.mha.wo.protection = LinearProtection::None;
        b.ffn.up.protection = LinearProtection::None;
        b.ffn.down.protection = LinearProtection::None;
    }
    let inj2 = make_injector(99);
    let (tokens_bare, _) = bare.generate(&prompt, new_tokens, &inj2);
    println!(
        "unprotected + BER: {:?}  (faults fired {})",
        &tokens_bare[prompt.len()..],
        inj2.fired()
    );

    let ft_match = tokens_ft == reference;
    let bare_match = tokens_bare == reference;
    println!("\nprotected output matches fault-free: {ft_match}");
    println!("unprotected output matches fault-free: {bare_match}");
}
