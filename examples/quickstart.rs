//! Quickstart: pick an attention backend by name, run it through the
//! unified `AttentionBackend` API, inject a soft error into the QKᵀ
//! tensor-core accumulation, and watch it get detected and corrected.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ft_transformer_suite::attention::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::sim::{FaultSite, OpCoord, SeuInjector};

fn main() {
    // The paper's medium setting: 16 heads × head-dim 64, here at seq 256.
    let cfg = AttentionConfig::medium(1, 256).with_auto_block();
    let q = normal_tensor_f16(1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(3, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);

    // Backends are selected by name — the same registry every bench,
    // campaign and CLI uses ("reference", "flash", "decoupled", "efta",
    // "efta-o", ...).
    let efta_o: BackendKind = "efta-o".parse().unwrap();
    let unprotected: BackendKind = "efta-unprotected".parse().unwrap();

    // 1. Fault-free run: the reference answer.
    let clean = efta_o.run(&AttentionRequest::new(cfg, &q, &k, &v));
    println!("clean run [{efta_o}]: report = {:?}", clean.report);
    assert!(clean.report.clean());

    // 2. Inject a single-event upset: bit 30 of a tensor-core accumulator
    //    producing S[10][70] of head 3 (block j=1 ⇒ data-GEMM iter 3).
    let inj =
        SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(3, 10, 70, 3), 30).at_chain_step(20);
    let protected = efta_o.run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
    println!(
        "with SEU:  detected={} repaired={} max |delta| vs clean = {:.2e}",
        protected.report.total_detected(),
        protected.report.total_repaired(),
        protected.o.max_abs_diff(&clean.o),
    );
    assert!(
        protected.report.total_detected() > 0,
        "fault must be detected"
    );
    assert!(
        protected.o.max_abs_diff(&clean.o) < 5e-2,
        "fault must be repaired"
    );

    // 3. The same fault through the unprotected backend silently corrupts
    //    the output — same request type, different strategy.
    let inj2 =
        SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(3, 10, 70, 3), 30).at_chain_step(20);
    let bare = unprotected.run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj2));
    println!(
        "unprotected: max |delta| vs clean = {:.2e} (silent corruption)",
        bare.o.max_abs_diff(&clean.o),
    );
    // The corrupted score lands far outside FP16 rounding noise (~1e-4 at
    // these magnitudes) yet the unprotected report stays clean: a silent
    // data corruption.
    assert!(bare.report.clean());
    assert!(bare.o.max_abs_diff(&clean.o) > 1e-3);

    println!("\nEFTA detected and repaired the soft error; flash attention did not.");
}
