//! Quickstart: run end-to-end fault tolerant attention (EFTA), inject a
//! soft error into the QKᵀ tensor-core accumulation, and watch it get
//! detected and corrected.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::efta::{efta_attention, EftaOptions};
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::sim::{FaultSite, NoFaults, OpCoord, SeuInjector};

fn main() {
    // The paper's medium setting: 16 heads × head-dim 64, here at seq 256.
    let cfg = AttentionConfig::medium(1, 256);
    let q = normal_tensor_f16(1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(3, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);

    // 1. Fault-free run: the reference answer.
    let clean = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::optimized());
    println!("clean run: report = {:?}", clean.report);
    assert!(clean.report.clean());

    // 2. Inject a single-event upset: bit 30 of a tensor-core accumulator
    //    producing S[10][70] of head 3 (block j=1 ⇒ data-GEMM iter 3).
    let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(3, 10, 70, 3), 30)
        .at_chain_step(20);
    let protected = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
    println!(
        "with SEU:  detected={} repaired={} max |delta| vs clean = {:.2e}",
        protected.report.total_detected(),
        protected.report.total_repaired(),
        protected.o.max_abs_diff(&clean.o),
    );
    assert!(protected.report.total_detected() > 0, "fault must be detected");
    assert!(protected.o.max_abs_diff(&clean.o) < 5e-2, "fault must be repaired");

    // 3. The same fault without protection silently corrupts the output.
    let inj2 = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(3, 10, 70, 3), 30)
        .at_chain_step(20);
    let bare = efta_attention(&cfg, &q, &k, &v, &inj2, &EftaOptions::unprotected());
    println!(
        "unprotected: max |delta| vs clean = {:.2e} (silent corruption)",
        bare.o.max_abs_diff(&clean.o),
    );
    assert!(bare.o.max_abs_diff(&clean.o) > 1e-2);

    println!("\nEFTA detected and repaired the soft error; flash attention did not.");
}
